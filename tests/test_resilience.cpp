// Failure-path tests of the resilient solve pipeline (ISSUE: typed
// SolveStatus, preconditioner fallback chain, comm fault injection). These
// exercise exactly the paths the happy-path suites never reach: CG breakdown
// on an indefinite operator, stagnation under an extreme contact penalty,
// factorization failure on a deliberately broken matrix, and injected message
// loss in the simulated MPI runtime. Built as a separate binary labelled
// `resilience` in ctest (ctest -L resilience).

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>

#include "contact/penalty.hpp"
#include "core/geofem.hpp"
#include "core/resilience.hpp"
#include "core/status.hpp"
#include "dist/dist_solver.hpp"
#include "fem/assembly.hpp"
#include "mesh/simple_block.hpp"
#include "nonlin/alm.hpp"
#include "part/partition.hpp"
#include "precond/bic.hpp"
#include "precond/diagonal.hpp"
#include "precond/sb_bic0.hpp"
#include "solver/cg.hpp"
#include "sparse/block_csr.hpp"

namespace gc = geofem::contact;
namespace gcore = geofem::core;
namespace gd = geofem::dist;
namespace gf = geofem::fem;
namespace gm = geofem::mesh;
namespace gpart = geofem::part;
namespace gp = geofem::precond;
namespace gs = geofem::sparse;

using geofem::Error;
using geofem::SolveStatus;
using geofem::StatusCode;

namespace {

/// The appendix simple-block contact problem; lambda is the contact penalty
/// that drives the BIC(0) conditioning cliff (paper Fig 23 / Table 2).
struct Problem {
  gm::HexMesh mesh;
  gf::System sys;

  explicit Problem(double lambda, gm::SimpleBlockParams bp = {4, 4, 3, 4, 4}) {
    mesh = gm::simple_block(bp);
    sys = gf::assemble_elasticity(mesh, {{1.0, 0.3}});
    gc::add_penalty(sys.a, mesh.contact_groups, lambda);
    gf::BoundaryConditions bc;
    bc.fix_nodes(mesh.nodes_where([](double, double, double z) { return z == 0.0; }), -1);
    const double zmax = mesh.bounding_box().hi[2];
    bc.surface_load(
        mesh, [&](double, double, double z) { return std::abs(z - zmax) < 1e-12; }, 2, -1.0);
    gf::apply_boundary_conditions(sys, bc);
  }
};

/// Block-diagonal matrix with d on every diagonal entry (n block rows).
gs::BlockCSR scaled_identity(int n, double d) {
  gs::BlockCSRBuilder bld(n);
  for (int i = 0; i < n; ++i) bld.add_pattern(i, i);
  bld.finalize_pattern();
  for (int i = 0; i < n; ++i)
    for (int c = 0; c < 3; ++c) bld.add_scalar(i, i, c, c, d);
  return bld.take();
}

constexpr int kHaloTag = 7;  // dist_solver's halo-exchange message tag

}  // namespace

// ---------------------------------------------------------------------------
// Status vocabulary
// ---------------------------------------------------------------------------

TEST(Status, OkAcceptsConvergedAndFellBackOnly) {
  EXPECT_TRUE(geofem::ok(SolveStatus::kConverged));
  EXPECT_TRUE(geofem::ok(SolveStatus::kFellBack));
  EXPECT_FALSE(geofem::ok(SolveStatus::kMaxIterations));
  EXPECT_FALSE(geofem::ok(SolveStatus::kStagnated));
  EXPECT_FALSE(geofem::ok(SolveStatus::kBreakdown));
  EXPECT_FALSE(geofem::ok(SolveStatus::kFactorizationFailed));
  EXPECT_FALSE(geofem::ok(SolveStatus::kCommTimeout));
}

TEST(Status, ToStringIsTotal) {
  for (SolveStatus s :
       {SolveStatus::kConverged, SolveStatus::kFellBack, SolveStatus::kMaxIterations,
        SolveStatus::kStagnated, SolveStatus::kBreakdown, SolveStatus::kFactorizationFailed,
        SolveStatus::kCommTimeout})
    EXPECT_FALSE(geofem::to_string(s).empty());
  for (StatusCode c : {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kIoError,
                       StatusCode::kStalePlan, StatusCode::kFactorizationFailed,
                       StatusCode::kCommTimeout})
    EXPECT_FALSE(geofem::to_string(c).empty());
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  const Error e(StatusCode::kIoError, "boom");
  EXPECT_EQ(e.code(), StatusCode::kIoError);
  EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
}

// ---------------------------------------------------------------------------
// CG breakdown and stagnation
// ---------------------------------------------------------------------------

TEST(Breakdown, IndefiniteOperatorReturnsBreakdownNotNaN) {
  // A = -I is negative definite: rho = r.(M^-1 r) < 0 on the first iteration.
  // The old solver kept iterating on garbage; now it reports kBreakdown.
  const auto a = scaled_identity(4, -1.0);
  const gp::DiagonalScaling prec(a);
  std::vector<double> b(a.ndof(), 1.0), x(a.ndof(), 0.0);
  const auto res = geofem::solver::pcg(a, prec, b, x, {.max_iterations = 50});
  EXPECT_EQ(res.status, SolveStatus::kBreakdown);
  EXPECT_FALSE(res.converged());
  for (double v : x) EXPECT_TRUE(std::isfinite(v));
}

TEST(Stagnation, ExtremePenaltyBIC0Stagnates) {
  // Table 2's "did not converge" regime: at lambda = 1e12 localized IC-family
  // preconditioning stalls. With a stagnation window the solver says so
  // instead of burning the whole iteration budget.
  Problem pb(1e12);
  const auto sn = gc::build_supernodes(pb.sys.a.n, pb.mesh.contact_groups);
  gcore::SolveConfig cfg;
  cfg.precond = gcore::PrecondKind::kBIC0;
  cfg.cg.max_iterations = 2000;
  cfg.cg.stagnation_window = 100;
  const auto rep = gcore::solve_system(pb.sys, sn, cfg);
  EXPECT_EQ(rep.status, SolveStatus::kStagnated);
  EXPECT_FALSE(rep.converged());
  EXPECT_LT(rep.cg.iterations, cfg.cg.max_iterations);  // detected early
}

TEST(Stagnation, WindowZeroKeepsLegacyMaxIterations) {
  Problem pb(1e12);
  const auto sn = gc::build_supernodes(pb.sys.a.n, pb.mesh.contact_groups);
  gcore::SolveConfig cfg;
  cfg.precond = gcore::PrecondKind::kBIC0;
  cfg.cg.max_iterations = 300;  // small budget; detector off
  const auto rep = gcore::solve_system(pb.sys, sn, cfg);
  EXPECT_EQ(rep.status, SolveStatus::kMaxIterations);
  EXPECT_EQ(rep.cg.iterations, 300);
}

// ---------------------------------------------------------------------------
// Fallback chain (core)
// ---------------------------------------------------------------------------

TEST(Fallback, StagnatedBIC0RecoversViaSBBIC0) {
  Problem pb(1e12);
  const auto sn = gc::build_supernodes(pb.sys.a.n, pb.mesh.contact_groups);
  gcore::SolveConfig cfg;
  cfg.precond = gcore::PrecondKind::kBIC0;
  cfg.cg.max_iterations = 2000;
  cfg.resilience.enabled = true;
  cfg.resilience.stagnation_window = 100;
  const auto rep = gcore::solve_system(pb.sys, sn, cfg);
  EXPECT_EQ(rep.status, SolveStatus::kFellBack);
  EXPECT_TRUE(rep.converged());
  ASSERT_EQ(rep.attempts.size(), 2u);
  EXPECT_EQ(rep.attempts[0], gcore::PrecondKind::kBIC0);
  EXPECT_EQ(rep.attempts[1], gcore::PrecondKind::kSBBIC0);
  EXPECT_GT(rep.fallback_iterations, 0);
  EXPECT_LE(rep.cg.relative_residual, cfg.cg.tolerance);
}

TEST(Fallback, HealthySolveIsUntouchedByResilienceFlag) {
  // With a benign penalty the primary preconditioner converges directly:
  // enabling resilience must not change a single residual.
  Problem pb(1e4);
  const auto sn = gc::build_supernodes(pb.sys.a.n, pb.mesh.contact_groups);
  gcore::SolveConfig cfg;
  cfg.precond = gcore::PrecondKind::kBIC0;
  cfg.cg.record_residuals = true;
  const auto off = gcore::solve_system(pb.sys, sn, cfg);
  cfg.resilience.enabled = true;
  const auto on = gcore::solve_system(pb.sys, sn, cfg);
  EXPECT_EQ(off.status, SolveStatus::kConverged);
  EXPECT_EQ(on.status, SolveStatus::kConverged);
  ASSERT_EQ(on.attempts.size(), 1u);
  EXPECT_EQ(on.fallback_iterations, 0);
  ASSERT_EQ(off.cg.residual_history.size(), on.cg.residual_history.size());
  for (std::size_t i = 0; i < off.cg.residual_history.size(); ++i)
    EXPECT_EQ(off.cg.residual_history[i], on.cg.residual_history[i]);
}

TEST(Fallback, PDJDSChainRunsUnvectorizedRungsInNaturalOrdering) {
  // The PDJDS path only vectorizes BIC(0)/SB-BIC(0); a chain rung with any
  // other kind (here the last-resort block diagonal) must run in the natural
  // ordering instead of escaping solve_system as the plan's logic_error.
  Problem pb(1e12);
  const auto sn = gc::build_supernodes(pb.sys.a.n, pb.mesh.contact_groups);
  gcore::SolveConfig cfg;
  cfg.precond = gcore::PrecondKind::kBIC0;
  cfg.ordering = gcore::OrderingKind::kPDJDSCMRCM;
  cfg.cg.max_iterations = 500;
  cfg.resilience.enabled = true;
  cfg.resilience.stagnation_window = 100;
  cfg.resilience.chain = {gcore::PrecondKind::kBlockDiagonal};
  gcore::SolveReport rep;
  ASSERT_NO_THROW(rep = gcore::solve_system(pb.sys, sn, cfg));
  ASSERT_EQ(rep.attempts.size(), 2u);
  EXPECT_EQ(rep.attempts[1], gcore::PrecondKind::kBlockDiagonal);
  // The outcome is a typed status either way (block Jacobi may or may not
  // converge at this penalty) — the point is it never crashes the caller.
  EXPECT_FALSE(geofem::to_string(rep.status).empty());
}

TEST(Fallback, DefaultChainEndsInBlockDiagonal) {
  using geofem::plan::PrecondKind;
  for (PrecondKind k :
       {PrecondKind::kScalarIC0, PrecondKind::kBIC0, PrecondKind::kBIC1, PrecondKind::kBIC2}) {
    const auto chain = geofem::default_fallback_chain(k);
    ASSERT_EQ(chain.size(), 2u) << geofem::plan::to_string(k);
    EXPECT_EQ(chain[0], PrecondKind::kSBBIC0);
    EXPECT_EQ(chain[1], PrecondKind::kBlockDiagonal);
  }
  EXPECT_EQ(geofem::default_fallback_chain(PrecondKind::kSBBIC0).size(), 1u);
  EXPECT_TRUE(geofem::default_fallback_chain(PrecondKind::kBlockDiagonal).empty());
}

// ---------------------------------------------------------------------------
// Factorization failure
// ---------------------------------------------------------------------------

TEST(Factorization, ZeroDiagonalBlockThrowsTypedError) {
  // A zeroed diagonal block used to be silently "repaired" (unit pivot) or
  // produced NaNs downstream; every factorization now throws a typed error.
  const auto a = scaled_identity(3, 0.0);
  try {
    gp::BIC0 prec(a);
    FAIL() << "BIC0 accepted a zero diagonal block";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), StatusCode::kFactorizationFailed);
  }
  try {
    gp::DiagonalScaling prec(a);
    FAIL() << "DiagonalScaling accepted a zero diagonal";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), StatusCode::kFactorizationFailed);
  }
}

TEST(Factorization, BlockDiagonalLastResortNeverThrows) {
  // The end of every fallback chain must be buildable on anything, including
  // the matrix that just broke the real preconditioners.
  const auto a = scaled_identity(3, 0.0);
  const gp::BlockDiagonal prec(a);
  std::vector<double> r(a.ndof(), 1.0), z(a.ndof(), 0.0);
  prec.apply(r, z, nullptr, nullptr);
  for (double v : z) EXPECT_TRUE(std::isfinite(v));
}

TEST(Factorization, ALMSurfacesFactorizationFailure) {
  const auto m = gm::simple_block({3, 3, 2, 3, 3});
  gf::BoundaryConditions bc;
  bc.fix_nodes(m.nodes_where([](double, double, double z) { return z == 0.0; }), -1);
  bc.surface_load(m, [](double, double, double z) { return z > 4.9; }, 2, -1.0);
  geofem::nonlin::ALMOptions opt;
  opt.max_cycles = 3;
  const auto res = geofem::nonlin::solve_tied_contact_alm(
      m, {{1.0, 0.3}}, bc,
      [](const gs::BlockCSR&) -> gp::PreconditionerPtr {
        throw Error(StatusCode::kFactorizationFailed, "injected");
      },
      opt);
  EXPECT_EQ(res.status, SolveStatus::kFactorizationFailed);
  EXPECT_FALSE(res.converged());
  EXPECT_EQ(res.cycles, 0);
}

// ---------------------------------------------------------------------------
// Fallback chain (distributed)
// ---------------------------------------------------------------------------

TEST(DistFallback, StagnatedRanksFallBackInLockstep) {
  Problem pb(1e12);
  const auto p = gpart::rcb_contact_aware(pb.mesh, 4);
  const auto systems = gpart::distribute(pb.sys.a, pb.sys.b, p);
  gd::DistOptions opt;
  opt.cg.max_iterations = 2000;
  opt.resilience.enabled = true;
  opt.resilience.stagnation_window = 100;
  const auto& groups = pb.mesh.contact_groups;
  opt.fallback_factory = [&groups](const gpart::LocalSystem& ls, const gs::BlockCSR& aii, geofem::precond::Precision) {
    auto sn = gc::build_supernodes(aii.n, ls.local_contact_groups(groups));
    return std::make_unique<gp::SBBIC0>(aii, std::move(sn));
  };
  const auto res = gd::solve_distributed(
      systems,
      [](const gpart::LocalSystem&, const gs::BlockCSR& aii, geofem::precond::Precision) {
        return std::make_unique<gp::BIC0>(aii);
      },
      opt);
  EXPECT_EQ(res.status, SolveStatus::kFellBack);
  EXPECT_TRUE(res.converged());
  for (SolveStatus s : res.status_per_rank) EXPECT_EQ(s, SolveStatus::kFellBack);
  EXPECT_GT(res.fallback_iterations, 0);
  EXPECT_LE(res.relative_residual, opt.cg.tolerance);
}

TEST(DistFallback, WalksMultipleRungsUpToMaxFallbacks) {
  Problem pb(1e4, {3, 3, 2, 3, 3});
  const auto p = gpart::rcb_contact_aware(pb.mesh, 2);
  const auto systems = gpart::distribute(pb.sys.a, pb.sys.b, p);
  gd::DistOptions opt;
  opt.cg.max_iterations = 2000;
  opt.resilience.enabled = true;
  const auto broken = [](const gpart::LocalSystem&, const gs::BlockCSR&,
                         geofem::precond::Precision) -> gp::PreconditionerPtr {
    throw Error(StatusCode::kFactorizationFailed, "injected");
  };
  opt.fallback_factory = broken;
  // Primary build fails, rung 1 (the broken fallback factory) fails, rung 2
  // (the built-in block diagonal) recovers — within the default budget of 2.
  auto res = gd::solve_distributed(systems, broken, opt);
  EXPECT_EQ(res.status, SolveStatus::kFellBack);
  EXPECT_TRUE(res.converged());
  // A budget of 1 stops after the broken factory, as documented.
  opt.resilience.max_fallbacks = 1;
  res = gd::solve_distributed(systems, broken, opt);
  EXPECT_EQ(res.status, SolveStatus::kFactorizationFailed);
  EXPECT_FALSE(res.converged());
}

TEST(DistFallback, HealthySolvePastWindowIsNotSpuriouslyStagnated) {
  // Regression: the distributed stagnation ring buffer used a post-increment
  // index, so slot 0 was never written and any resilience-enabled solve
  // running at least `stagnation_window` iterations was declared stagnated at
  // exactly iteration == window (comparing against the ring's initial 0.0) no
  // matter how well it was converging.
  Problem pb(1e2);
  const auto p = gpart::rcb_contact_aware(pb.mesh, 4);
  const auto systems = gpart::distribute(pb.sys.a, pb.sys.b, p);
  gd::DistOptions opt;
  opt.cg.max_iterations = 2000;
  opt.resilience.enabled = true;
  // Diagonal scaling takes ~300 iterations here and its genuine plateaus stay
  // under a 80-iteration window (worst trailing ratio ~0.11 vs the 0.99
  // trigger), so any stagnation report is the ring-buffer bug, not physics.
  opt.resilience.stagnation_window = 80;
  const auto res = gd::solve_distributed(
      systems,
      [](const gpart::LocalSystem&, const gs::BlockCSR& aii, geofem::precond::Precision) {
        return std::make_unique<gp::DiagonalScaling>(aii);
      },
      opt);
  EXPECT_EQ(res.status, SolveStatus::kConverged);  // not kFellBack
  for (SolveStatus s : res.status_per_rank) EXPECT_EQ(s, SolveStatus::kConverged);
  EXPECT_EQ(res.fallback_iterations, 0);
  EXPECT_GT(res.iterations, 80);  // the window was actually crossed
}

// ---------------------------------------------------------------------------
// Comm fault injection
// ---------------------------------------------------------------------------

TEST(CommFault, DroppedHaloMessageTimesOutEveryRankWithinDeadline) {
  Problem pb(1e4);
  const auto p = gpart::rcb_contact_aware(pb.mesh, 4);
  const auto systems = gpart::distribute(pb.sys.a, pb.sys.b, p);
  gd::DistOptions opt;
  opt.cg.max_iterations = 2000;
  opt.cg.record_residuals = true;
  opt.faults.timeout_seconds = 0.5;
  // Lose one halo message mid-solve; without timeouts the receiver (and then,
  // via the allreduce, the whole job) would hang forever.
  opt.faults.faults.push_back(
      {.from = 0, .to = 1, .tag = kHaloTag, .after_messages = 3, .delay_seconds = 0.0});

  const auto t0 = std::chrono::steady_clock::now();
  const auto res = gd::solve_distributed(
      systems,
      [](const gpart::LocalSystem&, const gs::BlockCSR& aii, geofem::precond::Precision) {
        return std::make_unique<gp::BIC0>(aii);
      },
      opt);
  const double elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  EXPECT_EQ(res.status, SolveStatus::kCommTimeout);
  EXPECT_FALSE(res.converged());
  ASSERT_EQ(res.status_per_rank.size(), 4u);
  for (SolveStatus s : res.status_per_rank) EXPECT_EQ(s, SolveStatus::kCommTimeout);
  EXPECT_GE(res.traffic_per_rank[0].messages_dropped, 1u);
  // Progress up to the deadline is preserved, not reported as 0 iterations /
  // residual 0.0: the fault fires a few halo exchanges in, so rank 0 has
  // completed iterations, a finite last residual, and a recorded history.
  EXPECT_GT(res.iterations, 0);
  EXPECT_TRUE(std::isfinite(res.relative_residual));
  EXPECT_GT(res.relative_residual, 0.0);
  EXPECT_FALSE(res.residual_history.empty());
  // Deadline guard: the cascade must resolve in a few timeout periods, not
  // hang until the test runner kills us (sanitizer builds run ~10x slower).
  EXPECT_LT(elapsed, 30.0);
}

TEST(CommFault, DelayedLinkStillConverges) {
  // A slow link is not a lost link: with the deadline comfortably above the
  // injected delay the solve completes normally, just later.
  Problem pb(1e4, {3, 3, 2, 3, 3});
  const auto p = gpart::rcb_contact_aware(pb.mesh, 2);
  const auto systems = gpart::distribute(pb.sys.a, pb.sys.b, p);
  gd::DistOptions opt;
  opt.cg.max_iterations = 2000;
  opt.faults.timeout_seconds = 20.0;
  opt.faults.faults.push_back(
      {.from = 0, .to = 1, .tag = kHaloTag, .after_messages = 0, .delay_seconds = 0.002});
  const auto res = gd::solve_distributed(
      systems,
      [](const gpart::LocalSystem&, const gs::BlockCSR& aii, geofem::precond::Precision) {
        return std::make_unique<gp::BIC0>(aii);
      },
      opt);
  EXPECT_EQ(res.status, SolveStatus::kConverged);
  EXPECT_EQ(res.traffic_per_rank[0].messages_dropped, 0u);
}

TEST(CommFault, RecvTimeoutThrowsTypedErrorDirectly) {
  gd::FaultPlan plan;
  plan.timeout_seconds = 0.05;
  gd::Runtime::run(2, plan, [](gd::Comm& c) {
    if (c.rank() == 0) {
      try {
        (void)c.recv(1, 42);  // rank 1 never sends
        ADD_FAILURE() << "recv returned without a message";
      } catch (const Error& e) {
        EXPECT_EQ(e.code(), StatusCode::kCommTimeout);
      }
    }
  });
}
