#include <gtest/gtest.h>

#include <cmath>

#include "contact/penalty.hpp"
#include "fem/assembly.hpp"
#include "mesh/simple_block.hpp"
#include "precond/bic.hpp"
#include "precond/diagonal.hpp"
#include "precond/sb_bic0.hpp"
#include "precond/scalar_ic0.hpp"
#include "solver/cg.hpp"

namespace gc = geofem::contact;
namespace gf = geofem::fem;
namespace gm = geofem::mesh;
namespace gp = geofem::precond;
namespace gs = geofem::solver;

namespace {

/// Tiny version of the paper's contact problem: simple block model with
/// penalty-tied contact groups, fixed bottom, loaded top.
struct ContactProblem {
  gm::HexMesh mesh;
  gf::System sys;
  gc::Supernodes supers;

  explicit ContactProblem(double lambda, gm::SimpleBlockParams p = {3, 3, 2, 3, 3}) {
    mesh = gm::simple_block(p);
    sys = gf::assemble_elasticity(mesh, {{1.0, 0.3}});
    gc::add_penalty(sys.a, mesh.contact_groups, lambda);
    gf::BoundaryConditions bc;
    bc.fix_nodes(mesh.nodes_where([](double, double, double z) { return z == 0.0; }), -1);
    bc.fix_nodes(mesh.nodes_where([](double x, double, double) { return x == 0.0; }), 0);
    bc.fix_nodes(mesh.nodes_where([](double, double y, double) { return y == 0.0; }), 1);
    const double zmax = mesh.bounding_box().hi[2];
    bc.surface_load(
        mesh, [&](double, double, double z) { return std::abs(z - zmax) < 1e-12; }, 2, -1.0);
    gf::apply_boundary_conditions(sys, bc);
    supers = gc::build_supernodes(mesh.num_nodes(), mesh.contact_groups);
  }
};

double solve_and_check(const ContactProblem& pb, const gp::Preconditioner& m, int* iters,
                       double tol = 1e-8, int max_it = 5000) {
  std::vector<double> x(pb.sys.a.ndof(), 0.0);
  gs::CGOptions opt;
  opt.tolerance = tol;
  opt.max_iterations = max_it;
  auto res = gs::pcg(pb.sys.a, m, pb.sys.b, x, opt);
  if (iters) *iters = res.iterations;
  // true residual check
  std::vector<double> r(x.size());
  pb.sys.a.spmv(x, r, nullptr, nullptr);
  double num = 0, den = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    num += (r[i] - pb.sys.b[i]) * (r[i] - pb.sys.b[i]);
    den += pb.sys.b[i] * pb.sys.b[i];
  }
  return std::sqrt(num / den);
}

}  // namespace

TEST(Penalty, AddsLaplacianBlocks) {
  ContactProblem pb(0.0);
  auto a0 = pb.sys.a;  // copy before penalty
  gc::add_penalty(pb.sys.a, pb.mesh.contact_groups, 100.0);
  // one pair group: A_ij -= lambda on each displacement component
  const auto& g = pb.mesh.contact_groups.front();
  const int e = pb.sys.a.find(g[0], g[1]);
  ASSERT_GE(e, 0);
  const int e0 = a0.find(g[0], g[1]);
  EXPECT_NEAR(pb.sys.a.block(e)[0] - a0.block(e0)[0], -100.0, 1e-12);
  EXPECT_NEAR(pb.sys.a.block(e)[4] - a0.block(e0)[4], -100.0, 1e-12);
  // symmetry preserved
  EXPECT_NEAR(pb.sys.a.symmetry_error(), 0.0, 1e-10);
}

TEST(Supernodes, PartitionCoversAllNodes) {
  ContactProblem pb(1e2);
  const auto& sn = pb.supers;
  std::size_t members = 0;
  for (const auto& m : sn.members) members += m.size();
  EXPECT_EQ(members, static_cast<std::size_t>(pb.mesh.num_nodes()));
  for (int v = 0; v < pb.mesh.num_nodes(); ++v) {
    const int s = sn.node_to_super[static_cast<std::size_t>(v)];
    ASSERT_GE(s, 0);
    bool found = false;
    for (int w : sn.members[static_cast<std::size_t>(s)]) found |= (w == v);
    EXPECT_TRUE(found);
  }
  EXPECT_EQ(sn.max_size(), 3);
}

// --- Correctness of each preconditioner as an SPD operator: PCG must reach a
// --- small true residual on the moderately conditioned problem.
TEST(Precond, AllSolveModeratePenalty) {
  ContactProblem pb(1e2);
  int it = 0;
  EXPECT_LT(solve_and_check(pb, gp::DiagonalScaling(pb.sys.a), &it), 1e-7);
  EXPECT_LT(solve_and_check(pb, gp::ScalarIC0(pb.sys.a), &it), 1e-7);
  EXPECT_LT(solve_and_check(pb, gp::BIC0(pb.sys.a), &it), 1e-7);
  EXPECT_LT(solve_and_check(pb, gp::BlockILUk(pb.sys.a, 1), &it), 1e-7);
  EXPECT_LT(solve_and_check(pb, gp::BlockILUk(pb.sys.a, 2), &it), 1e-7);
  EXPECT_LT(solve_and_check(pb, gp::SBBIC0(pb.sys.a, pb.supers), &it), 1e-7);
}

/// The paper's central result in miniature (Table 2 / A.1): SB-BIC(0)
/// iteration counts are flat in lambda; BIC(0) degrades badly.
TEST(Precond, SelectiveBlockingRobustInLambda) {
  int it_low = 0, it_high = 0;
  {
    ContactProblem pb(1e2);
    gp::SBBIC0 m(pb.sys.a, pb.supers);
    EXPECT_LT(solve_and_check(pb, m, &it_low), 1e-7);
  }
  {
    ContactProblem pb(1e8);
    gp::SBBIC0 m(pb.sys.a, pb.supers);
    // at kappa ~ 1e8 the attainable true relative residual is limited by
    // rounding (kappa * eps ~ 1e-8), so the acceptance threshold is looser
    EXPECT_LT(solve_and_check(pb, m, &it_high), 1e-5);
  }
  // flat within a couple of iterations
  EXPECT_LE(std::abs(it_high - it_low), 3) << it_low << " vs " << it_high;
}

TEST(Precond, BIC0DegradesWithLambda) {
  int it_low = 0, it_high = 0;
  {
    ContactProblem pb(1e2);
    gp::BIC0 m(pb.sys.a);
    solve_and_check(pb, m, &it_low);
  }
  {
    ContactProblem pb(1e8);
    gp::BIC0 m(pb.sys.a);
    solve_and_check(pb, m, &it_high, 1e-8, 4000);
  }
  EXPECT_GT(it_high, 2 * it_low) << it_low << " vs " << it_high;
}

TEST(Precond, DeepFillRobustInLambda) {
  int it_low = 0, it_high = 0;
  {
    ContactProblem pb(1e2);
    gp::BlockILUk m(pb.sys.a, 1);
    EXPECT_LT(solve_and_check(pb, m, &it_low), 1e-7);
  }
  {
    ContactProblem pb(1e8);
    gp::BlockILUk m(pb.sys.a, 1);
    EXPECT_LT(solve_and_check(pb, m, &it_high), 1e-5);
  }
  EXPECT_LE(it_high, it_low + 10);
}

TEST(Precond, FewerIterationsWithDeeperFill) {
  ContactProblem pb(1e6);
  int it_sb = 0, it1 = 0, it2 = 0;
  solve_and_check(pb, gp::SBBIC0(pb.sys.a, pb.supers), &it_sb);
  solve_and_check(pb, gp::BlockILUk(pb.sys.a, 1), &it1);
  solve_and_check(pb, gp::BlockILUk(pb.sys.a, 2), &it2);
  EXPECT_LE(it2, it1);
  EXPECT_GE(it_sb, it1);  // SB needs more iterations but each is cheaper
}

TEST(Precond, MemoryOrdering) {
  // Paper Table 2: SB-BIC(0) memory ~ BIC(0) << BIC(1) < BIC(2).
  ContactProblem pb(1e6, {4, 4, 3, 4, 4});
  gp::BIC0 b0(pb.sys.a);
  gp::SBBIC0 sb(pb.sys.a, pb.supers);
  gp::BlockILUk b1(pb.sys.a, 1);
  gp::BlockILUk b2(pb.sys.a, 2);
  EXPECT_LT(sb.memory_bytes(), b1.memory_bytes() / 2);
  EXPECT_LT(b1.memory_bytes(), b2.memory_bytes());
  EXPECT_LT(b0.memory_bytes(), sb.memory_bytes() * 4);
}

TEST(Precond, FillGrowsWithLevel) {
  ContactProblem pb(1e2);
  gp::BlockILUk b1(pb.sys.a, 1);
  gp::BlockILUk b2(pb.sys.a, 2);
  EXPECT_GT(b2.factor_blocks(), b1.factor_blocks());
  EXPECT_GT(b1.factor_blocks(),
            static_cast<std::size_t>(pb.sys.a.nnz_blocks() - pb.sys.a.n) / 2);
}

TEST(Precond, ApplyIsLinear) {
  ContactProblem pb(1e4);
  gp::SBBIC0 m(pb.sys.a, pb.supers);
  const std::size_t n = pb.sys.a.ndof();
  std::vector<double> r1(n), r2(n), rsum(n), z1(n), z2(n), zsum(n);
  for (std::size_t i = 0; i < n; ++i) {
    r1[i] = std::sin(0.1 * static_cast<double>(i));
    r2[i] = std::cos(0.37 * static_cast<double>(i));
    rsum[i] = 2.0 * r1[i] - 3.0 * r2[i];
  }
  m.apply(r1, z1, nullptr, nullptr);
  m.apply(r2, z2, nullptr, nullptr);
  m.apply(rsum, zsum, nullptr, nullptr);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(zsum[i], 2.0 * z1[i] - 3.0 * z2[i], 1e-6 * (1.0 + std::abs(zsum[i])));
}

TEST(Precond, SBBIC0EqualsBIC0WithoutContact) {
  // With no contact groups every supernode is a singleton and SB-BIC(0)
  // reduces exactly to BIC(0).
  auto mesh = gm::unit_cube(3, 3, 3);
  auto sys = gf::assemble_elasticity(mesh, {{1.0, 0.3}});
  gf::BoundaryConditions bc;
  bc.fix_nodes(mesh.nodes_where([](double, double, double z) { return z == 0.0; }), -1);
  bc.surface_load(mesh, [](double, double, double z) { return std::abs(z - 1.0) < 1e-12; }, 2,
                  -1.0);
  gf::apply_boundary_conditions(sys, bc);
  auto sn = gc::build_supernodes(mesh.num_nodes(), {});

  gp::BIC0 b0(sys.a);
  gp::SBBIC0 sb(sys.a, sn);
  std::vector<double> r(sys.a.ndof()), z1(sys.a.ndof()), z2(sys.a.ndof());
  for (std::size_t i = 0; i < r.size(); ++i) r[i] = std::sin(static_cast<double>(i));
  b0.apply(r, z1, nullptr, nullptr);
  sb.apply(r, z2, nullptr, nullptr);
  for (std::size_t i = 0; i < r.size(); ++i) EXPECT_NEAR(z1[i], z2[i], 1e-10);
}

TEST(CG, ReportsResidualHistoryMonotonicallyAtEnd) {
  ContactProblem pb(1e2);
  gp::BlockILUk m(pb.sys.a, 1);
  std::vector<double> x(pb.sys.a.ndof(), 0.0);
  gs::CGOptions opt;
  opt.record_residuals = true;
  auto res = gs::pcg(pb.sys.a, m, pb.sys.b, x, opt);
  ASSERT_TRUE(res.converged());
  ASSERT_EQ(res.residual_history.size(), static_cast<std::size_t>(res.iterations) + 1);
  EXPECT_LE(res.residual_history.back(), 1e-8);
  EXPECT_GT(res.residual_history.front(), res.residual_history.back());
}

TEST(CG, CountsWork) {
  ContactProblem pb(1e2);
  gp::BIC0 m(pb.sys.a);
  std::vector<double> x(pb.sys.a.ndof(), 0.0);
  auto res = gs::pcg(pb.sys.a, m, pb.sys.b, x);
  EXPECT_GT(res.flops.spmv, 0u);
  EXPECT_GT(res.flops.precond, 0u);
  EXPECT_GT(res.flops.blas1, 0u);
  EXPECT_GT(res.loops.count(), 0);
}
