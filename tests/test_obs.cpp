// Tests of the telemetry subsystem (src/obs): span nesting and parent/depth
// bookkeeping, the JSON document model, counter/gauge handles, the cross-rank
// snapshot codec riding dist::Comm::gather, min/max/mean aggregation, and the
// exporters (Chrome trace and metrics reports parsed back for validation).

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <thread>
#include <vector>

#include "dist/comm.hpp"
#include "obs/obs.hpp"

namespace go = geofem::obs;
namespace gd = geofem::dist;

// ---------------------------------------------------------------------------
// JSON document model
// ---------------------------------------------------------------------------

TEST(ObsJson, RoundTripsDocument) {
  auto doc = go::json::Value::object();
  doc["name"] = "sb-bic0";
  doc["iterations"] = 123;
  doc["converged"] = true;
  doc["eps"] = 1e-8;
  auto arr = go::json::Value::array();
  arr.push(1.5);
  arr.push("two");
  arr.push(go::json::Value());
  doc["mixed"] = std::move(arr);

  const auto parsed = go::json::Value::parse(doc.dump(2));
  EXPECT_EQ(parsed.at("name").str(), "sb-bic0");
  EXPECT_DOUBLE_EQ(parsed.at("iterations").number(), 123.0);
  EXPECT_TRUE(parsed.at("converged").boolean());
  EXPECT_DOUBLE_EQ(parsed.at("eps").number(), 1e-8);
  EXPECT_EQ(parsed.at("mixed").size(), 3u);
  EXPECT_EQ(parsed.at("mixed").at(1).str(), "two");
  EXPECT_TRUE(parsed.at("mixed").at(2).is_null());
}

TEST(ObsJson, PreservesMemberOrder) {
  auto doc = go::json::Value::object();
  doc["zebra"] = 1;
  doc["alpha"] = 2;
  doc["mu"] = 3;
  const auto parsed = go::json::Value::parse(doc.dump());
  ASSERT_EQ(parsed.members().size(), 3u);
  EXPECT_EQ(parsed.members()[0].first, "zebra");
  EXPECT_EQ(parsed.members()[1].first, "alpha");
  EXPECT_EQ(parsed.members()[2].first, "mu");
}

TEST(ObsJson, EscapesAndParsesSpecialStrings) {
  auto doc = go::json::Value::object();
  const std::string nasty = "quote\" backslash\\ newline\n tab\t ctrl\x01";
  doc["s"] = nasty;
  const auto parsed = go::json::Value::parse(doc.dump());
  EXPECT_EQ(parsed.at("s").str(), nasty);
  // \u escapes decode too
  EXPECT_EQ(go::json::Value::parse("\"\\u0041\\u00e9\"").str(), "A\xC3\xA9");
}

TEST(ObsJson, RejectsMalformedInput) {
  EXPECT_THROW(go::json::Value::parse("{\"a\": }"), std::runtime_error);
  EXPECT_THROW(go::json::Value::parse("[1, 2"), std::runtime_error);
  EXPECT_THROW(go::json::Value::parse("{} trailing"), std::runtime_error);
  EXPECT_THROW(go::json::Value::parse("nul"), std::runtime_error);
  EXPECT_THROW(go::json::Value::parse(""), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Registry: counters, gauges, meta, spans
// ---------------------------------------------------------------------------

TEST(ObsRegistry, CounterAndGaugeHandlesAreStable) {
  go::Registry reg;
  go::Counter* c = reg.counter("pcg.iterations");
  c->add(10);
  // create-or-get: same handle back, other metrics don't invalidate it
  for (int i = 0; i < 100; ++i) reg.counter("other." + std::to_string(i));
  EXPECT_EQ(reg.counter("pcg.iterations"), c);
  c->add(5);
  go::Gauge* g = reg.gauge("pcg.solve_seconds");
  g->set(1.25);
  g->set(2.5);  // last write wins

  const go::Snapshot s = reg.snapshot();
  ASSERT_NE(s.counter("pcg.iterations"), nullptr);
  EXPECT_EQ(*s.counter("pcg.iterations"), 15u);
  ASSERT_NE(s.gauge("pcg.solve_seconds"), nullptr);
  EXPECT_DOUBLE_EQ(*s.gauge("pcg.solve_seconds"), 2.5);
  EXPECT_EQ(s.counter("missing"), nullptr);
}

TEST(ObsRegistry, SpansNestWithDepthAndParent) {
  go::Registry reg;
  {
    go::ScopedSpan outer(&reg, "solve");
    {
      go::ScopedSpan setup(&reg, "setup");
    }
    {
      go::ScopedSpan iter(&reg, "iterate");
      go::ScopedSpan inner(&reg, "spmv");
    }
  }
  const go::Snapshot s = reg.snapshot();
  ASSERT_EQ(s.spans.size(), 4u);
  // recorded in begin order
  EXPECT_EQ(s.spans[0].name, "solve");
  EXPECT_EQ(s.spans[1].name, "setup");
  EXPECT_EQ(s.spans[2].name, "iterate");
  EXPECT_EQ(s.spans[3].name, "spmv");
  EXPECT_EQ(s.spans[0].depth, 0);
  EXPECT_EQ(s.spans[0].parent, -1);
  EXPECT_EQ(s.spans[1].depth, 1);
  EXPECT_EQ(s.spans[1].parent, 0);
  EXPECT_EQ(s.spans[2].depth, 1);
  EXPECT_EQ(s.spans[2].parent, 0);
  EXPECT_EQ(s.spans[3].depth, 2);
  EXPECT_EQ(s.spans[3].parent, 2);
  for (const auto& sp : s.spans) {
    EXPECT_GE(sp.dur_us, 0.0) << sp.name << " left open";
    EXPECT_GE(sp.start_us, 0.0);
  }
  // children start within the parent interval
  EXPECT_GE(s.spans[3].start_us, s.spans[2].start_us);
  EXPECT_LE(s.spans[3].start_us + s.spans[3].dur_us,
            s.spans[2].start_us + s.spans[2].dur_us + 1e-6);
}

TEST(ObsRegistry, NullRegistrySpansAreNoOps) {
  go::Attach detach(nullptr);
  EXPECT_EQ(go::current(), nullptr);
  go::ScopedSpan span("ignored");  // must not crash or record anywhere
}

TEST(ObsRegistry, AttachNestsAndRestores) {
  go::Registry a, b;
  EXPECT_EQ(go::current(), nullptr);
  {
    go::Attach aa(&a);
    EXPECT_EQ(go::current(), &a);
    {
      go::Attach ab(&b);
      EXPECT_EQ(go::current(), &b);
    }
    EXPECT_EQ(go::current(), &a);
  }
  EXPECT_EQ(go::current(), nullptr);
}

TEST(ObsRegistry, SpanCapacityDropsButCounts) {
  go::Registry reg;
  reg.set_span_capacity(2);
  for (int i = 0; i < 5; ++i) {
    go::ScopedSpan s(&reg, "s");
  }
  const go::Snapshot s = reg.snapshot();
  EXPECT_EQ(s.spans.size(), 2u);
  EXPECT_EQ(reg.spans_dropped(), 3u);
}

TEST(ObsRegistry, AbsorbFoldsLegacyAccumulators) {
  geofem::util::FlopCounter fc;
  fc.spmv += 100;
  fc.blas1 += 50;
  geofem::util::LoopStats ls;
  ls.record(64, 2);
  ls.record(128);

  go::Registry reg;
  reg.absorb("pcg", fc);
  reg.absorb("pcg", ls);
  const go::Snapshot s = reg.snapshot();
  EXPECT_EQ(*s.counter("pcg.flops.spmv"), 100u);
  EXPECT_EQ(*s.counter("pcg.flops.blas1"), 50u);
  EXPECT_EQ(*s.counter("pcg.flops.total"), 150u);
  EXPECT_EQ(*s.counter("pcg.loops.count"), 3u);
  EXPECT_EQ(*s.counter("pcg.loops.total_length"), 256u);
  EXPECT_DOUBLE_EQ(*s.gauge("pcg.avg_vector_length"), 256.0 / 3.0);
}

TEST(ObsRegistry, ThreadTrackingStaysBounded) {
  // Regression: OpenMP runtimes retire and respawn workers between parallel
  // regions, so a long-lived registry used to accumulate one thread_ids_ /
  // open_stacks_ entry per worker ever seen. Slots of threads with no open
  // span must be recycled once the map reaches kMaxTrackedThreads.
  go::Registry reg;
  constexpr int kThreads = go::Registry::kMaxTrackedThreads + 100;
  for (int i = 0; i < kThreads; ++i) {
    std::thread([&reg] {
      go::ScopedSpan s(&reg, "worker");
    }).join();
  }
  EXPECT_LE(reg.tracked_threads(), go::Registry::kMaxTrackedThreads);
  // tids in the recorded spans stay inside the bounded slot range
  const go::Snapshot s = reg.snapshot();
  for (const auto& sp : s.spans) {
    EXPECT_GE(sp.tid, 0);
    EXPECT_LT(sp.tid, go::Registry::kMaxTrackedThreads);
  }
}

TEST(ObsRegistry, ConcurrentSpansFromOmpRegion) {
  // Span begin/end from inside a parallel region: per-thread nesting must
  // stay consistent (no cross-thread parent links) and nothing may crash or
  // leak open-stack entries.
  go::Registry reg;
  {
    go::ScopedSpan root(&reg, "root");
#pragma omp parallel num_threads(4)
    {
      for (int i = 0; i < 50; ++i) {
        go::ScopedSpan outer(&reg, "outer");
        go::ScopedSpan inner(&reg, "inner");
      }
    }
  }
  const go::Snapshot s = reg.snapshot();
  ASSERT_FALSE(s.spans.empty());
  for (std::size_t i = 0; i < s.spans.size(); ++i) {
    const auto& sp = s.spans[i];
    EXPECT_GE(sp.dur_us, 0.0) << sp.name << " left open";
    if (sp.name == "inner") {
      // an inner span's parent is an outer span opened by the same thread
      ASSERT_GE(sp.parent, 0);
      const auto& parent = s.spans[static_cast<std::size_t>(sp.parent)];
      EXPECT_EQ(parent.name, "outer");
      EXPECT_EQ(parent.tid, sp.tid);
    }
  }
  EXPECT_LE(reg.tracked_threads(), go::Registry::kMaxTrackedThreads);
}

// ---------------------------------------------------------------------------
// Codec + cross-rank merge through the simulated-MPI gather path
// ---------------------------------------------------------------------------

TEST(ObsCodec, SnapshotRoundTripsThroughDoubles) {
  go::Registry reg;
  reg.counter("iters")->add(42);
  reg.gauge("seconds")->set(0.75);
  reg.set_meta("scale", "small");
  reg.set_meta("dof", 19890.0);
  {
    go::ScopedSpan a(&reg, "outer");
    go::ScopedSpan b(&reg, "inner");
  }
  const go::Snapshot orig = reg.snapshot();
  const std::vector<double> blob = go::encode(orig);
  const auto back = go::decode_all(blob);
  ASSERT_EQ(back.size(), 1u);
  const go::Snapshot& s = back[0];
  EXPECT_EQ(*s.counter("iters"), 42u);
  EXPECT_DOUBLE_EQ(*s.gauge("seconds"), 0.75);
  ASSERT_EQ(s.meta_strings.size(), 1u);
  EXPECT_EQ(s.meta_strings[0].second, "small");
  ASSERT_EQ(s.meta_numbers.size(), 1u);
  EXPECT_DOUBLE_EQ(s.meta_numbers[0].second, 19890.0);
  ASSERT_EQ(s.spans.size(), 2u);
  EXPECT_EQ(s.spans[1].name, "inner");
  EXPECT_EQ(s.spans[1].parent, 0);
  EXPECT_DOUBLE_EQ(s.spans[0].start_us, orig.spans[0].start_us);
  EXPECT_DOUBLE_EQ(s.spans[1].dur_us, orig.spans[1].dur_us);
}

TEST(ObsCodec, MergesCountersAcrossSimulatedRanks) {
  constexpr int kRanks = 4;
  std::vector<go::Snapshot> merged;
  gd::Runtime::run(kRanks, [&](gd::Comm& comm) {
    go::Registry reg;
    go::Attach attach(&reg);
    // rank-dependent values: counter 10*(rank+1), gauge = rank
    reg.counter("work.items")->add(static_cast<std::uint64_t>(10 * (comm.rank() + 1)));
    reg.gauge("work.seconds")->set(static_cast<double>(comm.rank()));
    if (comm.rank() == 1) reg.counter("only.on.rank1")->add(7);
    const auto gathered = comm.gather(0, go::encode(reg.snapshot()));
    if (comm.rank() == 0) merged = go::decode_all(gathered);
  });

  ASSERT_EQ(merged.size(), static_cast<std::size_t>(kRanks));
  for (int r = 0; r < kRanks; ++r)
    EXPECT_EQ(*merged[static_cast<std::size_t>(r)].counter("work.items"),
              static_cast<std::uint64_t>(10 * (r + 1)));

  const go::MergedReport rep = go::aggregate(merged);
  EXPECT_EQ(rep.ranks, kRanks);
  const go::MetricStat& items = rep.counters.at("work.items");
  EXPECT_DOUBLE_EQ(items.min, 10.0);
  EXPECT_DOUBLE_EQ(items.max, 40.0);
  EXPECT_DOUBLE_EQ(items.sum, 100.0);
  EXPECT_DOUBLE_EQ(items.mean, 25.0);
  EXPECT_EQ(items.ranks, kRanks);
  const go::MetricStat& secs = rep.gauges.at("work.seconds");
  EXPECT_DOUBLE_EQ(secs.min, 0.0);
  EXPECT_DOUBLE_EQ(secs.max, 3.0);
  // a metric reported by a single rank still aggregates (over that rank only)
  const go::MetricStat& lone = rep.counters.at("only.on.rank1");
  EXPECT_EQ(lone.ranks, 1);
  EXPECT_DOUBLE_EQ(lone.sum, 7.0);
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

TEST(ObsExport, ChromeTraceParsesBackAndNests) {
  go::Registry reg;
  {
    go::ScopedSpan outer(&reg, "solve");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    {
      go::ScopedSpan inner(&reg, "spmv");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  const auto doc = go::json::Value::parse(go::chrome_trace_json(reg.snapshot(), 3).dump(2));
  const auto& events = doc.at("traceEvents");
  ASSERT_EQ(events.size(), 2u);

  const auto* outer = &events.at(0);
  const auto* inner = &events.at(1);
  if (outer->at("name").str() != "solve") std::swap(outer, inner);
  EXPECT_EQ(outer->at("name").str(), "solve");
  EXPECT_EQ(inner->at("name").str(), "spmv");
  for (const auto* e : {outer, inner}) {
    EXPECT_EQ(e->at("ph").str(), "X");  // complete events
    EXPECT_DOUBLE_EQ(e->at("pid").number(), 3.0);
    EXPECT_GE(e->at("dur").number(), 0.0);
  }
  // the child interval is contained in the parent interval
  const double po = outer->at("ts").number(), do_ = outer->at("dur").number();
  const double pi = inner->at("ts").number(), di = inner->at("dur").number();
  EXPECT_GE(pi, po);
  EXPECT_LE(pi + di, po + do_ + 1e-6);
  EXPECT_GE(do_, 2000.0);  // outer slept >= 2 ms
  EXPECT_GE(di, 1000.0);
}

TEST(ObsExport, MetricsJsonRoundTripsMetadata) {
  go::Registry reg;
  reg.set_meta("scale", "paper");
  reg.set_meta("dof", 2471439.0);
  reg.set_meta("lambda", 1e6);
  reg.counter("pcg.iterations")->add(205);
  reg.gauge("pcg.solve_seconds")->set(11.2);
  {
    go::ScopedSpan s(&reg, "pcg.solve");
  }

  const auto doc = go::json::Value::parse(go::metrics_json(reg.snapshot()).dump(2));
  EXPECT_DOUBLE_EQ(doc.at("schema_version").number(),
                   static_cast<double>(go::kMetricsSchemaVersion));
  EXPECT_EQ(doc.at("meta").at("scale").str(), "paper");
  EXPECT_DOUBLE_EQ(doc.at("meta").at("dof").number(), 2471439.0);
  EXPECT_DOUBLE_EQ(doc.at("meta").at("lambda").number(), 1e6);
  EXPECT_DOUBLE_EQ(doc.at("counters").at("pcg.iterations").number(), 205.0);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("pcg.solve_seconds").number(), 11.2);
  const auto& span = doc.at("spans").at("pcg.solve");
  EXPECT_DOUBLE_EQ(span.at("count").number(), 1.0);
  EXPECT_GE(span.at("total_seconds").number(), 0.0);
}

TEST(ObsExport, MultiRankMetricsJsonCarriesSpread) {
  std::vector<go::Snapshot> per_rank(2);
  {
    go::Registry r0;
    r0.counter("iters")->add(100);
    per_rank[0] = r0.snapshot();
    go::Registry r1;
    r1.counter("iters")->add(300);
    per_rank[1] = r1.snapshot();
  }
  const auto merged = go::aggregate(per_rank);
  const auto doc = go::json::Value::parse(go::metrics_json(per_rank, merged).dump(2));
  EXPECT_DOUBLE_EQ(doc.at("ranks").number(), 2.0);
  const auto& iters = doc.at("counters").at("iters");
  EXPECT_DOUBLE_EQ(iters.at("min").number(), 100.0);
  EXPECT_DOUBLE_EQ(iters.at("max").number(), 300.0);
  EXPECT_DOUBLE_EQ(iters.at("mean").number(), 200.0);
  EXPECT_EQ(doc.at("per_rank").size(), 2u);
}

// ---------------------------------------------------------------------------
// Histograms (latency distributions: log-spaced bins, quantiles, merge)
// ---------------------------------------------------------------------------

TEST(ObsHistogram, RecordsBasicStatsAndQuantiles) {
  go::Registry reg;
  go::Histogram* h = reg.histogram("svc.latency");
  for (int i = 1; i <= 100; ++i) h->record(static_cast<double>(i) * 1e-3);  // 1..100 ms
  const go::HistogramData d = h->data();
  EXPECT_EQ(d.count, 100u);
  EXPECT_NEAR(d.sum, 5.050, 1e-9);
  EXPECT_DOUBLE_EQ(d.min, 1e-3);
  EXPECT_DOUBLE_EQ(d.max, 0.1);
  EXPECT_NEAR(d.mean(), 0.0505, 1e-12);
  // log-spaced bins at 4/octave: ~19% relative edge spacing; quantiles are
  // interpolated, so allow that resolution
  EXPECT_NEAR(d.quantile(0.5), 0.050, 0.012);
  EXPECT_NEAR(d.quantile(0.95), 0.095, 0.02);
  EXPECT_GE(d.quantile(0.99), d.quantile(0.95));
  // quantiles are clamped into [min, max]
  EXPECT_GE(d.quantile(0.0), d.min);
  EXPECT_LE(d.quantile(1.0), d.max);
}

TEST(ObsHistogram, EmptyHistogramIsInert) {
  go::Registry reg;
  const go::HistogramData d = reg.histogram("empty")->data();
  EXPECT_EQ(d.count, 0u);
  EXPECT_DOUBLE_EQ(d.min, 0.0);
  EXPECT_DOUBLE_EQ(d.max, 0.0);
  EXPECT_DOUBLE_EQ(d.mean(), 0.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.5), 0.0);
}

TEST(ObsHistogram, OutOfRangeValuesClampToEdgeBins) {
  go::Registry reg;
  go::Histogram* h = reg.histogram("h");
  h->record(1e-30);  // below 2^-24
  h->record(1e6);    // above 2^8
  const go::HistogramData d = h->data();
  EXPECT_EQ(d.count, 2u);
  EXPECT_DOUBLE_EQ(d.min, 1e-30);
  EXPECT_DOUBLE_EQ(d.max, 1e6);
  EXPECT_EQ(d.bins.front(), 1u);
  EXPECT_EQ(d.bins.back(), 1u);
}

TEST(ObsHistogram, ConcurrentRecordLosesNothing) {
  go::Registry reg;
  go::Histogram* h = reg.histogram("svc.latency");
  constexpr int kThreads = 8, kPer = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([h, t] {
      for (int i = 0; i < kPer; ++i)
        h->record(1e-3 * static_cast<double>(1 + ((t * kPer + i) % 64)));
    });
  for (auto& th : threads) th.join();
  const go::HistogramData d = h->data();
  EXPECT_EQ(d.count, static_cast<std::uint64_t>(kThreads) * kPer);
  std::uint64_t binned = 0;
  for (const std::uint64_t b : d.bins) binned += b;
  EXPECT_EQ(binned, d.count);  // relaxed atomics still lose no increment
  EXPECT_DOUBLE_EQ(d.min, 1e-3);
  EXPECT_DOUBLE_EQ(d.max, 64e-3);
}

TEST(ObsHistogram, MergeMatchesCombinedRecording) {
  go::Registry a, b, both;
  for (int i = 1; i <= 50; ++i) {
    a.histogram("h")->record(i * 1e-3);
    both.histogram("h")->record(i * 1e-3);
  }
  for (int i = 51; i <= 80; ++i) {
    b.histogram("h")->record(i * 1e-3);
    both.histogram("h")->record(i * 1e-3);
  }
  go::HistogramData merged = a.histogram("h")->data();
  merged.merge(b.histogram("h")->data());
  const go::HistogramData ref = both.histogram("h")->data();
  EXPECT_EQ(merged.count, ref.count);
  EXPECT_DOUBLE_EQ(merged.sum, ref.sum);
  EXPECT_DOUBLE_EQ(merged.min, ref.min);
  EXPECT_DOUBLE_EQ(merged.max, ref.max);
  ASSERT_EQ(merged.bins.size(), ref.bins.size());
  for (std::size_t i = 0; i < ref.bins.size(); ++i) EXPECT_EQ(merged.bins[i], ref.bins[i]);
  EXPECT_DOUBLE_EQ(merged.quantile(0.95), ref.quantile(0.95));
}

TEST(ObsHistogram, CodecRoundTripsAndAggregates) {
  go::Registry reg;
  reg.counter("iters")->add(3);
  for (int i = 1; i <= 40; ++i) reg.histogram("lat")->record(i * 1e-2);
  const go::Snapshot orig = reg.snapshot();
  const auto back = go::decode_all(go::encode(orig));
  ASSERT_EQ(back.size(), 1u);
  const go::HistogramData* d = back[0].histogram("lat");
  ASSERT_NE(d, nullptr);
  const go::HistogramData* o = orig.histogram("lat");
  EXPECT_EQ(d->count, o->count);
  EXPECT_DOUBLE_EQ(d->sum, o->sum);
  EXPECT_DOUBLE_EQ(d->min, o->min);
  EXPECT_DOUBLE_EQ(d->max, o->max);
  for (std::size_t i = 0; i < o->bins.size(); ++i) EXPECT_EQ(d->bins[i], o->bins[i]);

  // cross-rank aggregate merges bin-for-bin
  const std::vector<go::Snapshot> ranks = {orig, back[0]};
  const go::MergedReport rep = go::aggregate(ranks);
  const go::HistogramData& agg = rep.histograms.at("lat");
  EXPECT_EQ(agg.count, 2 * o->count);
  EXPECT_DOUBLE_EQ(agg.min, o->min);
  EXPECT_DOUBLE_EQ(agg.max, o->max);
}

TEST(ObsHistogram, MetricsJsonReportsQuantiles) {
  go::Registry reg;
  for (int i = 1; i <= 100; ++i) reg.histogram("svc.latency.batch")->record(i * 1e-3);
  const go::Snapshot snap = reg.snapshot();
  const auto doc = go::json::Value::parse(go::metrics_json(snap).dump(2));
  EXPECT_DOUBLE_EQ(doc.at("schema_version").number(), 2.0);
  const auto& h = doc.at("histograms").at("svc.latency.batch");
  EXPECT_DOUBLE_EQ(h.at("count").number(), 100.0);
  const go::HistogramData* d = snap.histogram("svc.latency.batch");
  EXPECT_DOUBLE_EQ(h.at("p50").number(), d->quantile(0.5));
  EXPECT_DOUBLE_EQ(h.at("p95").number(), d->quantile(0.95));
  EXPECT_DOUBLE_EQ(h.at("p99").number(), d->quantile(0.99));
  EXPECT_DOUBLE_EQ(h.at("min").number(), 1e-3);
  EXPECT_DOUBLE_EQ(h.at("max").number(), 0.1);
  EXPECT_GT(h.at("mean").number(), 0.0);
}

TEST(ObsExport, SpanTreeListsNestedNames) {
  go::Registry reg;
  {
    go::ScopedSpan outer(&reg, "solve");
    for (int i = 0; i < 3; ++i) {
      go::ScopedSpan inner(&reg, "spmv");
    }
  }
  std::ostringstream os;
  go::write_span_tree(reg.snapshot(), os);
  const std::string out = os.str();
  EXPECT_NE(out.find("solve"), std::string::npos);
  EXPECT_NE(out.find("spmv"), std::string::npos);
  EXPECT_NE(out.find("x3"), std::string::npos);  // call count of the inner span
}
