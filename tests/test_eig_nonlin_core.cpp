#include <gtest/gtest.h>

#include <cmath>

#include "contact/penalty.hpp"
#include "core/geofem.hpp"
#include "eig/lanczos.hpp"
#include "fem/assembly.hpp"
#include "mesh/simple_block.hpp"
#include "nonlin/alm.hpp"
#include "perf/es_model.hpp"
#include "precond/bic.hpp"
#include "precond/sb_bic0.hpp"

namespace gc = geofem::contact;
namespace ge = geofem::eig;
namespace gf = geofem::fem;
namespace gm = geofem::mesh;
namespace gcore = geofem::core;
namespace gp = geofem::precond;

namespace {

struct Problem {
  gm::HexMesh mesh;
  gf::System sys;
  gf::BoundaryConditions bc;
  gc::Supernodes sn;

  explicit Problem(double lambda, gm::SimpleBlockParams bp = {3, 3, 2, 3, 3}) {
    mesh = gm::simple_block(bp);
    sys = gf::assemble_elasticity(mesh, {{1.0, 0.3}});
    gc::add_penalty(sys.a, mesh.contact_groups, lambda);
    bc.fix_nodes(mesh.nodes_where([](double, double, double z) { return z == 0.0; }), -1);
    const double zmax = mesh.bounding_box().hi[2];
    bc.surface_load(
        mesh, [&](double, double, double z) { return std::abs(z - zmax) < 1e-12; }, 2, -1.0);
    gf::apply_boundary_conditions(sys, bc);
    sn = gc::build_supernodes(mesh.num_nodes(), mesh.contact_groups);
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Eigenvalue analysis (Appendix A)
// ---------------------------------------------------------------------------

TEST(Tridiag, KnownEigenvalues) {
  // [[2,-1,0],[-1,2,-1],[0,-1,2]] has eigenvalues 2 - sqrt(2), 2, 2 + sqrt(2)
  auto eig = ge::tridiag_eigenvalues({2, 2, 2}, {-1, -1});
  ASSERT_EQ(eig.size(), 3u);
  EXPECT_NEAR(eig[0], 2 - std::sqrt(2.0), 1e-10);
  EXPECT_NEAR(eig[1], 2.0, 1e-10);
  EXPECT_NEAR(eig[2], 2 + std::sqrt(2.0), 1e-10);
}

TEST(Tridiag, SingleEntry) {
  auto eig = ge::tridiag_eigenvalues({5.0}, {});
  ASSERT_EQ(eig.size(), 1u);
  EXPECT_NEAR(eig[0], 5.0, 1e-10);
}

TEST(Spectrum, SBBIC0FlatInLambda) {
  // Table A.2's signature: SB-BIC(0) eigenvalues of M^-1 A are ~constant in
  // lambda (the absolute kappa depends on the elasticity mesh; what selective
  // blocking buys is independence from the penalty).
  double k_low = 0, k_high = 0;
  {
    Problem pb(1e2);
    gp::SBBIC0 m(pb.sys.a, pb.sn);
    auto est = ge::estimate_spectrum(pb.sys.a, m, pb.sys.b, 200);
    EXPECT_GT(est.emin, 0.0);
    k_low = est.condition();
  }
  {
    Problem pb(1e8);
    gp::SBBIC0 m(pb.sys.a, pb.sn);
    auto est = ge::estimate_spectrum(pb.sys.a, m, pb.sys.b, 200);
    k_high = est.condition();
  }
  EXPECT_LT(k_high, 2.0 * k_low) << k_low << " vs " << k_high;
  EXPECT_GT(k_high, 0.5 * k_low) << k_low << " vs " << k_high;
}

TEST(Spectrum, UnmodifiedDiagonalBoundsEmaxByOne) {
  // With D~ = A_ii (plain block SSOR), M - A = L D^-1 L^T >= 0, so all
  // eigenvalues of M^-1 A are <= 1 — a sharp structural property.
  Problem pb(1e4);
  gp::SBBIC0 m(pb.sys.a, pb.sn, /*modified=*/false);
  auto est = ge::estimate_spectrum(pb.sys.a, m, pb.sys.b, 200);
  EXPECT_LE(est.emax, 1.0 + 1e-6);
  EXPECT_GT(est.emin, 0.0);
}

TEST(Spectrum, BIC0ConditionGrowsWithLambda) {
  // Table A.2: BIC(0) E_min collapses like 1/lambda.
  double k_low = 0, k_high = 0;
  {
    Problem pb(1e2);
    gp::BIC0 m(pb.sys.a);
    k_low = ge::estimate_spectrum(pb.sys.a, m, pb.sys.b, 300).condition();
  }
  {
    Problem pb(1e6);
    gp::BIC0 m(pb.sys.a);
    k_high = ge::estimate_spectrum(pb.sys.a, m, pb.sys.b, 300).condition();
  }
  EXPECT_GT(k_high, 50.0 * k_low) << k_low << " vs " << k_high;
}

// ---------------------------------------------------------------------------
// ALM nonlinear driver (Fig 2)
// ---------------------------------------------------------------------------

namespace {

geofem::nonlin::ALMResult run_alm(double lambda) {
  gm::HexMesh mesh = gm::simple_block({3, 3, 2, 3, 3});
  gf::BoundaryConditions bc;
  bc.fix_nodes(mesh.nodes_where([](double, double, double z) { return z == 0.0; }), -1);
  const double zmax = mesh.bounding_box().hi[2];
  bc.surface_load(
      mesh, [&](double, double, double z) { return std::abs(z - zmax) < 1e-12; }, 2, -1.0);

  geofem::nonlin::ALMOptions opt;
  opt.lambda = lambda;
  opt.constraint_tol = 1e-7;
  auto sn = gc::build_supernodes(mesh.num_nodes(), mesh.contact_groups);
  return geofem::nonlin::solve_tied_contact_alm(
      mesh, {{1.0, 0.3}}, bc,
      [&](const geofem::sparse::BlockCSR& a) { return std::make_unique<gp::SBBIC0>(a, sn); },
      opt);
}

}  // namespace

TEST(ALM, ConvergesAndClosesGap) {
  auto res = run_alm(1e4);
  ASSERT_TRUE(res.converged());
  EXPECT_LT(res.gap_history.back(), 1e-7);
  // gap contracts monotonically
  for (std::size_t c = 1; c < res.gap_history.size(); ++c)
    EXPECT_LT(res.gap_history[c], res.gap_history[c - 1]);
}

TEST(ALM, LargerPenaltyFewerCycles) {
  // Fig 2: the Newton-Raphson (outer) cycle count falls with lambda.
  auto weak = run_alm(1e3);
  auto strong = run_alm(1e6);
  ASSERT_TRUE(weak.converged());
  ASSERT_TRUE(strong.converged());
  EXPECT_LT(strong.cycles, weak.cycles) << strong.cycles << " vs " << weak.cycles;
}

// ---------------------------------------------------------------------------
// Core facade
// ---------------------------------------------------------------------------

TEST(Core, SolveCSRPath) {
  gm::HexMesh mesh = gm::simple_block({3, 3, 2, 3, 3});
  gf::BoundaryConditions bc;
  bc.fix_nodes(mesh.nodes_where([](double, double, double z) { return z == 0.0; }), -1);
  const double zmax = mesh.bounding_box().hi[2];
  bc.surface_load(
      mesh, [&](double, double, double z) { return std::abs(z - zmax) < 1e-12; }, 2, -1.0);

  gcore::SolveConfig cfg;
  cfg.precond = gcore::PrecondKind::kSBBIC0;
  cfg.penalty = 1e6;
  auto rep = gcore::solve(mesh, {{1.0, 0.3}}, bc, cfg);
  EXPECT_TRUE(rep.cg.converged());
  EXPECT_EQ(rep.precond_name, "SB-BIC(0)");
  EXPECT_GT(rep.precond_bytes, 0u);
  EXPECT_EQ(rep.solution.size(), mesh.num_dof());
}

TEST(Core, PDJDSPathMatchesCSRSolution) {
  gm::HexMesh mesh = gm::simple_block({3, 3, 2, 3, 3});
  gf::BoundaryConditions bc;
  bc.fix_nodes(mesh.nodes_where([](double, double, double z) { return z == 0.0; }), -1);
  const double zmax = mesh.bounding_box().hi[2];
  bc.surface_load(
      mesh, [&](double, double, double z) { return std::abs(z - zmax) < 1e-12; }, 2, -1.0);

  gcore::SolveConfig csr, djds;
  csr.penalty = djds.penalty = 1e4;
  csr.cg.tolerance = djds.cg.tolerance = 1e-10;
  djds.ordering = gcore::OrderingKind::kPDJDSMC;
  djds.colors = 12;
  auto r1 = gcore::solve(mesh, {{1.0, 0.3}}, bc, csr);
  auto r2 = gcore::solve(mesh, {{1.0, 0.3}}, bc, djds);
  ASSERT_TRUE(r1.cg.converged());
  ASSERT_TRUE(r2.cg.converged());
  EXPECT_GT(r2.avg_vector_length, 1.0);
  EXPECT_GT(r2.colors_used, 1);
  double err = 0, scale = 0;
  for (std::size_t i = 0; i < r1.solution.size(); ++i) {
    err = std::max(err, std::abs(r1.solution[i] - r2.solution[i]));
    scale = std::max(scale, std::abs(r1.solution[i]));
  }
  EXPECT_LT(err, 1e-6 * scale);
}

TEST(Core, AllPrecondNamesRoundTrip) {
  using K = gcore::PrecondKind;
  for (K k : {K::kDiagonal, K::kScalarIC0, K::kBIC0, K::kBIC1, K::kBIC2, K::kSBBIC0})
    EXPECT_FALSE(gcore::to_string(k).empty());
}

// ---------------------------------------------------------------------------
// Performance model sanity
// ---------------------------------------------------------------------------

TEST(EsModel, LongerLoopsFasterRate) {
  geofem::perf::EsModel es;
  geofem::util::LoopStats short_loops, long_loops;
  short_loops.record(10, 1000);
  long_loops.record(10000, 1);
  // same total elements -> long loops strictly faster
  EXPECT_LT(es.vector_seconds(long_loops, 18.0), es.vector_seconds(short_loops, 18.0));
  // asymptotic rate approaches rinf
  const double t = es.vector_seconds(long_loops, 18.0);
  const double rate = 10000.0 * 18.0 / t;
  EXPECT_GT(rate, 0.9 * es.rinf_per_pe);
}

TEST(EsModel, CommLatencyVsBandwidth) {
  geofem::perf::EsModel es;
  geofem::dist::TrafficStats many_small{10000, 10000 * 8, 0, 0};
  geofem::dist::TrafficStats few_big{10, 10000 * 8, 0, 0};
  EXPECT_GT(es.comm_seconds(many_small, 2), es.comm_seconds(few_big, 2));
}

TEST(EsModel, WorkRatioBreakdown) {
  geofem::perf::TimeBreakdown tb;
  tb.compute = 0.9;
  tb.comm_latency = 0.05;
  tb.comm_bandwidth = 0.05;
  EXPECT_NEAR(tb.work_ratio_percent(), 90.0, 1e-9);
  EXPECT_NEAR(tb.total(), 1.0, 1e-12);
}

TEST(Core, CMRCMOrderingAlsoMatches) {
  gm::HexMesh mesh = gm::simple_block({3, 3, 2, 3, 3});
  gf::BoundaryConditions bc;
  bc.fix_nodes(mesh.nodes_where([](double, double, double z) { return z == 0.0; }), -1);
  const double zmax = mesh.bounding_box().hi[2];
  bc.surface_load(
      mesh, [&](double, double, double z) { return std::abs(z - zmax) < 1e-12; }, 2, -1.0);

  gcore::SolveConfig csr, cmrcm;
  csr.penalty = cmrcm.penalty = 1e6;
  csr.cg.tolerance = cmrcm.cg.tolerance = 1e-10;
  cmrcm.ordering = gcore::OrderingKind::kPDJDSCMRCM;
  cmrcm.colors = 10;
  auto r1 = gcore::solve(mesh, {{1.0, 0.3}}, bc, csr);
  auto r2 = gcore::solve(mesh, {{1.0, 0.3}}, bc, cmrcm);
  ASSERT_TRUE(r1.cg.converged());
  ASSERT_TRUE(r2.cg.converged());
  double err = 0, scale = 0;
  for (std::size_t i = 0; i < r1.solution.size(); ++i) {
    err = std::max(err, std::abs(r1.solution[i] - r2.solution[i]));
    scale = std::max(scale, std::abs(r1.solution[i]));
  }
  EXPECT_LT(err, 1e-6 * scale);
}
