#include <gtest/gtest.h>

#include <cmath>

#include "contact/penalty.hpp"
#include "fem/assembly.hpp"
#include "mesh/simple_block.hpp"
#include "precond/djds_bic.hpp"
#include "precond/sb_bic0.hpp"
#include "reorder/coloring.hpp"
#include "reorder/djds.hpp"
#include "solver/cg.hpp"
#include "util/rng.hpp"

namespace gc = geofem::contact;
namespace gf = geofem::fem;
namespace gm = geofem::mesh;
namespace gp = geofem::precond;
namespace gr = geofem::reorder;
namespace gs = geofem::sparse;

namespace {

struct Fixture {
  gm::HexMesh mesh;
  gf::System sys;
  gc::Supernodes sn;
  gr::Coloring coloring;

  explicit Fixture(double lambda, int colors = 8) {
    mesh = gm::simple_block({3, 3, 2, 3, 3});
    sys = gf::assemble_elasticity(mesh, {{1.0, 0.3}});
    gc::add_penalty(sys.a, mesh.contact_groups, lambda);
    gf::BoundaryConditions bc;
    bc.fix_nodes(mesh.nodes_where([](double, double, double z) { return z == 0.0; }), -1);
    const double zmax = mesh.bounding_box().hi[2];
    bc.surface_load(
        mesh, [&](double, double, double z) { return std::abs(z - zmax) < 1e-12; }, 2, -1.0);
    gf::apply_boundary_conditions(sys, bc);
    sn = gc::build_supernodes(mesh.num_nodes(), mesh.contact_groups);
    const auto g = gs::graph_of(sys.a);
    auto q = gr::quotient_graph(g, sn.node_to_super, sn.count());
    coloring = gr::lift_coloring(gr::multicolor(q, colors), sn.node_to_super, sys.a.n);
  }
};

/// Solve in DJDS ordering, return (iterations, true relative residual).
std::pair<int, double> solve_djds(const Fixture& f, const gr::DJDSMatrix& dj,
                                  const gp::DJDSBIC& m) {
  const std::size_t n = f.sys.a.ndof();
  std::vector<double> pb(n), px(n, 0.0);
  for (int i = 0; i < f.sys.a.n; ++i)
    for (int c = 0; c < 3; ++c)
      pb[static_cast<std::size_t>(dj.perm()[static_cast<std::size_t>(i)] * 3 + c)] =
          f.sys.b[static_cast<std::size_t>(i * 3 + c)];
  geofem::solver::CGOptions opt;
  auto res = geofem::solver::pcg(
      [&dj](std::span<const double> in, std::span<double> out, geofem::util::FlopCounter* fc,
            geofem::util::LoopStats* ls) { dj.spmv(in, out, fc, ls); },
      m, pb, px, opt);
  // true residual in original ordering
  std::vector<double> x(n), r(n);
  for (int i = 0; i < f.sys.a.n; ++i)
    for (int c = 0; c < 3; ++c)
      x[static_cast<std::size_t>(i * 3 + c)] =
          px[static_cast<std::size_t>(dj.perm()[static_cast<std::size_t>(i)] * 3 + c)];
  f.sys.a.spmv(x, r, nullptr, nullptr);
  double num = 0, den = 0;
  for (std::size_t i = 0; i < n; ++i) {
    num += (r[i] - f.sys.b[i]) * (r[i] - f.sys.b[i]);
    den += f.sys.b[i] * f.sys.b[i];
  }
  return {res.iterations, std::sqrt(num / den)};
}

}  // namespace

TEST(DJDSBIC, SolvesContactProblem) {
  Fixture f(1e4);
  gr::DJDSMatrix dj(f.sys.a, f.coloring, &f.sn, {});
  gp::DJDSBIC m(f.sys.a, dj);
  EXPECT_EQ(m.name(), "SB-BIC(0) PDJDS");
  auto [iters, resid] = solve_djds(f, dj, m);
  EXPECT_LT(resid, 1e-6);
  EXPECT_LT(iters, 400);
}

TEST(DJDSBIC, RobustInLambda) {
  int it_low = 0, it_high = 0;
  {
    Fixture f(1e2);
    gr::DJDSMatrix dj(f.sys.a, f.coloring, &f.sn, {});
    gp::DJDSBIC m(f.sys.a, dj);
    auto [iters, resid] = solve_djds(f, dj, m);
    EXPECT_LT(resid, 1e-6);
    it_low = iters;
  }
  {
    Fixture f(1e8);
    gr::DJDSMatrix dj(f.sys.a, f.coloring, &f.sn, {});
    gp::DJDSBIC m(f.sys.a, dj);
    auto [iters, resid] = solve_djds(f, dj, m);
    EXPECT_LT(resid, 1e-4);
    it_high = iters;
  }
  EXPECT_LE(std::abs(it_high - it_low), 5) << it_low << " vs " << it_high;
}

TEST(DJDSBIC, ApplyEquivalentToCSRPathWithSameOrder) {
  // With ONE color... impossible (adjacent rows). Instead check linearity and
  // SPD-consistency: z = M^-1 r must satisfy symmetry <M^-1 r1, r2> = <r1, M^-1 r2>.
  Fixture f(1e4);
  gr::DJDSMatrix dj(f.sys.a, f.coloring, &f.sn, {});
  gp::DJDSBIC m(f.sys.a, dj);
  const std::size_t n = f.sys.a.ndof();
  geofem::util::Rng rng(3);
  std::vector<double> r1(n), r2(n), z1(n), z2(n);
  for (std::size_t i = 0; i < n; ++i) {
    r1[i] = rng.uniform(-1, 1);
    r2[i] = rng.uniform(-1, 1);
  }
  m.apply(r1, z1, nullptr, nullptr);
  m.apply(r2, z2, nullptr, nullptr);
  double s12 = 0, s21 = 0, scale = 0;
  for (std::size_t i = 0; i < n; ++i) {
    s12 += z1[i] * r2[i];
    s21 += z2[i] * r1[i];
    scale += std::abs(z1[i] * r2[i]);
  }
  EXPECT_NEAR(s12, s21, 1e-9 * scale);
}

TEST(DJDSBIC, PlainBIC0WhenNoSupernodes) {
  Fixture f(1e2);
  const auto g = gs::graph_of(f.sys.a);
  auto col = gr::multicolor(g, 8);
  gr::DJDSMatrix dj(f.sys.a, col, nullptr, {});
  gp::DJDSBIC m(f.sys.a, dj);
  EXPECT_EQ(m.name(), "BIC(0) PDJDS");
  auto [iters, resid] = solve_djds(f, dj, m);
  EXPECT_LT(resid, 1e-6);
  (void)iters;
}

TEST(DJDSBIC, StructuralLoopsRecorded) {
  Fixture f(1e4);
  gr::DJDSMatrix dj(f.sys.a, f.coloring, &f.sn, {});
  gp::DJDSBIC m(f.sys.a, dj);
  EXPECT_GT(m.structural_loops().count(), 0);
  EXPECT_GT(m.structural_loops().average(), 0.0);
}

TEST(DJDSBIC, FewerColorsLongerPrecondLoops) {
  Fixture f5(1e4, 5), f40(1e4, 40);
  gr::DJDSMatrix dj5(f5.sys.a, f5.coloring, &f5.sn, {});
  gr::DJDSMatrix dj40(f40.sys.a, f40.coloring, &f40.sn, {});
  gp::DJDSBIC m5(f5.sys.a, dj5);
  gp::DJDSBIC m40(f40.sys.a, dj40);
  EXPECT_GT(m5.structural_loops().average(), m40.structural_loops().average());
}
