// Determinism tier of the hybrid execution layer (DESIGN.md §5e): residual
// histories and solutions must be bit-identical for any OpenMP team size and
// with halo overlap on or off. These are strict EXPECT_EQ comparisons on
// doubles — any reduction-order change in the threaded kernels fails here.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "contact/penalty.hpp"
#include "core/geofem.hpp"
#include "dist/dist_solver.hpp"
#include "fem/assembly.hpp"
#include "mesh/simple_block.hpp"
#include "par/par.hpp"
#include "part/local_system.hpp"
#include "part/partition.hpp"
#include "plan/plan.hpp"

namespace gc = geofem::contact;
namespace gcore = geofem::core;
namespace gd = geofem::dist;
namespace gf = geofem::fem;
namespace gm = geofem::mesh;
namespace gpar = geofem::par;
namespace gpart = geofem::part;
namespace gplan = geofem::plan;

namespace {

struct Problem {
  gm::HexMesh mesh;
  gf::System sys;

  explicit Problem(double lambda = 1e6, gm::SimpleBlockParams bp = {3, 3, 2, 3, 3}) {
    mesh = gm::simple_block(bp);
    sys = gf::assemble_elasticity(mesh, {{1.0, 0.3}});
    gc::add_penalty(sys.a, mesh.contact_groups, lambda);
    gf::BoundaryConditions bc;
    bc.fix_nodes(mesh.nodes_where([](double, double, double z) { return z == 0.0; }), -1);
    const double zmax = mesh.bounding_box().hi[2];
    bc.surface_load(
        mesh, [&](double, double, double z) { return std::abs(z - zmax) < 1e-12; }, 2, -1.0);
    gf::apply_boundary_conditions(sys, bc);
  }
};

void expect_same_report(const gcore::SolveReport& a, const gcore::SolveReport& b,
                        const char* what) {
  EXPECT_EQ(a.cg.iterations, b.cg.iterations) << what;
  ASSERT_EQ(a.cg.residual_history.size(), b.cg.residual_history.size()) << what;
  for (std::size_t k = 0; k < a.cg.residual_history.size(); ++k)
    ASSERT_EQ(a.cg.residual_history[k], b.cg.residual_history[k])
        << what << ": residual " << k << " differs";
  ASSERT_EQ(a.solution.size(), b.solution.size()) << what;
  for (std::size_t i = 0; i < a.solution.size(); ++i)
    ASSERT_EQ(a.solution[i], b.solution[i]) << what << ": solution component " << i;
}

}  // namespace

// ---------------------------------------------------------------------------
// Serial solver: threads = 1, 2, 4 bit-identical for every preconditioner
// ---------------------------------------------------------------------------

class HybridSerial : public ::testing::TestWithParam<gcore::PrecondKind> {};

TEST_P(HybridSerial, ResidualHistoryBitIdenticalAcrossTeamSizes) {
  Problem pb;
  const auto sn = gc::build_supernodes(pb.sys.a.n, pb.mesh.contact_groups);
  gcore::SolveConfig cfg;
  cfg.precond = GetParam();
  cfg.cg.tolerance = 1e-8;
  cfg.cg.record_residuals = true;
  cfg.use_plan_cache = false;  // isolate the kernels, not the cache

  cfg.threads = 1;
  const auto base = gcore::solve_system(pb.sys, sn, cfg);
  EXPECT_TRUE(base.converged());
  for (int t : {2, 4}) {
    cfg.threads = t;
    const auto rep = gcore::solve_system(pb.sys, sn, cfg);
    expect_same_report(base, rep, t == 2 ? "threads=2" : "threads=4");
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, HybridSerial,
                         ::testing::Values(gcore::PrecondKind::kBIC0, gcore::PrecondKind::kBIC1,
                                           gcore::PrecondKind::kSBBIC0,
                                           gcore::PrecondKind::kBlockDiagonal),
                         [](const auto& info) {
                           switch (info.param) {
                             case gcore::PrecondKind::kBIC0: return "BIC0";
                             case gcore::PrecondKind::kBIC1: return "BIC1";
                             case gcore::PrecondKind::kSBBIC0: return "SBBIC0";
                             case gcore::PrecondKind::kBlockDiagonal: return "BlockDiagonal";
                             default: return "other";
                           }
                         });

TEST(HybridSerial, PDJDSOrderingBitIdenticalAcrossTeamSizes) {
  Problem pb;
  const auto sn = gc::build_supernodes(pb.sys.a.n, pb.mesh.contact_groups);
  gcore::SolveConfig cfg;
  cfg.precond = gcore::PrecondKind::kSBBIC0;
  cfg.ordering = gcore::OrderingKind::kPDJDSMC;
  cfg.colors = 4;
  cfg.npe = 2;
  cfg.cg.tolerance = 1e-8;
  cfg.cg.record_residuals = true;
  cfg.use_plan_cache = false;

  cfg.threads = 1;
  const auto base = gcore::solve_system(pb.sys, sn, cfg);
  EXPECT_TRUE(base.converged());
  for (int t : {2, 4}) {
    cfg.threads = t;
    const auto rep = gcore::solve_system(pb.sys, sn, cfg);
    expect_same_report(base, rep, "PDJDS");
  }
}

// ---------------------------------------------------------------------------
// Distributed solver: 4 ranks × team sizes × overlap on/off, all bit-identical
// ---------------------------------------------------------------------------

TEST(HybridDist, FourRanksBitIdenticalAcrossTeamsAndOverlap) {
  Problem pb;
  auto p = gpart::rcb_contact_aware(pb.mesh, 4);
  auto systems = gpart::distribute(pb.sys.a, pb.sys.b, p);
  ASSERT_EQ(systems.size(), 4u);

  gplan::PlanConfig pcfg;
  pcfg.precond = gplan::PrecondKind::kSBBIC0;
  gplan::PlanCache cache(8);
  const auto factory = gd::make_plan_factory(cache, pcfg, pb.mesh.contact_groups);

  gd::DistOptions opt;
  opt.cg.tolerance = 1e-8;
  opt.cg.record_residuals = true;
  opt.telemetry = false;

  opt.threads = 1;
  opt.overlap = false;
  std::vector<double> x_base;
  const auto base = gd::solve_distributed(systems, factory, opt, &x_base);
  EXPECT_TRUE(base.converged());

  for (int t : {1, 2, 4}) {
    for (bool overlap : {false, true}) {
      if (t == 1 && !overlap) continue;  // the baseline itself
      opt.threads = t;
      opt.overlap = overlap;
      std::vector<double> x;
      const auto rep = gd::solve_distributed(systems, factory, opt, &x);
      SCOPED_TRACE(::testing::Message() << "threads=" << t << " overlap=" << overlap);
      EXPECT_EQ(rep.iterations, base.iterations);
      ASSERT_EQ(rep.residual_history.size(), base.residual_history.size());
      for (std::size_t k = 0; k < base.residual_history.size(); ++k)
        ASSERT_EQ(rep.residual_history[k], base.residual_history[k]) << "residual " << k;
      ASSERT_EQ(x.size(), x_base.size());
      for (std::size_t i = 0; i < x.size(); ++i)
        ASSERT_EQ(x[i], x_base[i]) << "solution component " << i;
    }
  }
}

TEST(HybridDist, MatchesSerialSolutionWithOverlap) {
  // The overlapped distributed solve must still agree with the serial solver
  // on the assembled solution to solver tolerance (not bitwise — different
  // preconditioner: localized per-rank vs global).
  Problem pb;
  const auto sn = gc::build_supernodes(pb.sys.a.n, pb.mesh.contact_groups);
  gcore::SolveConfig scfg;
  scfg.precond = gcore::PrecondKind::kSBBIC0;
  scfg.cg.tolerance = 1e-10;
  scfg.use_plan_cache = false;
  const auto serial = gcore::solve_system(pb.sys, sn, scfg);
  ASSERT_TRUE(serial.converged());

  auto p = gpart::rcb_contact_aware(pb.mesh, 4);
  auto systems = gpart::distribute(pb.sys.a, pb.sys.b, p);
  gplan::PlanConfig pcfg;
  pcfg.precond = gplan::PrecondKind::kSBBIC0;
  gplan::PlanCache cache(8);
  const auto factory = gd::make_plan_factory(cache, pcfg, pb.mesh.contact_groups);
  gd::DistOptions opt;
  opt.cg.tolerance = 1e-10;
  opt.threads = 2;
  opt.overlap = true;
  std::vector<double> x;
  const auto rep = gd::solve_distributed(systems, factory, opt, &x);
  ASSERT_TRUE(rep.converged());
  ASSERT_EQ(x.size(), serial.solution.size());
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    num += (x[i] - serial.solution[i]) * (x[i] - serial.solution[i]);
    den += serial.solution[i] * serial.solution[i];
  }
  EXPECT_LT(std::sqrt(num / den), 1e-6);
}

// ---------------------------------------------------------------------------
// par primitives
// ---------------------------------------------------------------------------

TEST(ParPrimitives, StaticRangeCoversOnce) {
  for (std::size_t n : {0u, 1u, 7u, 100u, 1001u}) {
    for (int parts : {1, 2, 3, 8}) {
      std::vector<int> hit(n, 0);
      for (int p = 0; p < parts; ++p) {
        const auto r = gpar::static_range(n, parts, p);
        ASSERT_LE(r.begin, r.end);
        for (std::size_t i = r.begin; i < r.end; ++i) ++hit[i];
      }
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(hit[i], 1) << "n=" << n << " parts=" << parts;
    }
  }
}

TEST(ParPrimitives, CombineShapeDependsOnlyOnLength) {
  // Summing the same partials must give the same bits regardless of how many
  // threads produced them — combine's tree shape is a function of the count.
  std::vector<double> partials;
  for (int i = 0; i < 37; ++i) partials.push_back(std::sin(0.1 * i) * 1e3);
  const double once = gpar::combine(partials.data(), partials.size());
  for (int rep = 0; rep < 4; ++rep)
    EXPECT_EQ(gpar::combine(partials.data(), partials.size()), once);
  // and differs from a plain left-to-right sum in general (sanity that the
  // tree is actually pairwise, not accidentally sequential)
  double seq = 0.0;
  for (double v : partials) seq += v;
  EXPECT_NEAR(seq, once, 1e-9 * std::abs(seq));
}

TEST(ParPrimitives, TeamScopeNestsAndRestores) {
  const int outer = gpar::threads();
  {
    gpar::TeamScope a(3);
    EXPECT_EQ(gpar::threads(), 3);
    {
      gpar::TeamScope b(1);
      EXPECT_EQ(gpar::threads(), 1);
    }
    EXPECT_EQ(gpar::threads(), 3);
  }
  EXPECT_EQ(gpar::threads(), outer);
}

TEST(ParPrimitives, RowSplitPartitionsInternalRows) {
  Problem pb;
  auto p = gpart::rcb_contact_aware(pb.mesh, 4);
  auto systems = gpart::distribute(pb.sys.a, pb.sys.b, p);
  for (const auto& ls : systems) {
    const auto split = ls.row_split();
    std::vector<int> seen(static_cast<std::size_t>(ls.num_internal), 0);
    for (int i : split.interior) ++seen[static_cast<std::size_t>(i)];
    for (int i : split.boundary) ++seen[static_cast<std::size_t>(i)];
    for (int i = 0; i < ls.num_internal; ++i)
      ASSERT_EQ(seen[static_cast<std::size_t>(i)], 1) << "row " << i << " rank " << ls.domain;
    for (int i : split.interior)
      for (int e = ls.a.rowptr[i]; e < ls.a.rowptr[i + 1]; ++e)
        ASSERT_LT(ls.a.colind[e], ls.num_internal) << "interior row reads an external column";
    for (int i : split.boundary) {
      bool external = false;
      for (int e = ls.a.rowptr[i]; e < ls.a.rowptr[i + 1]; ++e)
        external = external || ls.a.colind[e] >= ls.num_internal;
      ASSERT_TRUE(external) << "boundary row " << i << " has no external column";
    }
  }
}
