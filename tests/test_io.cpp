// Round-trip tests of the mesh and distributed-local-data file formats, plus
// the extra Comm collectives.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "contact/penalty.hpp"
#include "core/status.hpp"
#include "dist/comm.hpp"
#include "fem/assembly.hpp"
#include "mesh/io.hpp"
#include "mesh/simple_block.hpp"
#include "mesh/southwest_japan.hpp"
#include "part/io.hpp"
#include "part/local_system.hpp"
#include "part/partition.hpp"

namespace gd = geofem::dist;
namespace gm = geofem::mesh;
namespace gpart = geofem::part;

TEST(MeshIO, RoundTripSimpleBlock) {
  const auto m = gm::simple_block({3, 2, 2, 3, 2});
  std::stringstream ss;
  gm::write_mesh(ss, m);
  const auto m2 = gm::read_mesh(ss);
  ASSERT_EQ(m2.num_nodes(), m.num_nodes());
  ASSERT_EQ(m2.num_elements(), m.num_elements());
  ASSERT_EQ(m2.contact_groups.size(), m.contact_groups.size());
  for (int i = 0; i < m.num_nodes(); ++i)
    for (int d = 0; d < 3; ++d)
      EXPECT_DOUBLE_EQ(m2.coords[static_cast<std::size_t>(i)][static_cast<std::size_t>(d)],
                       m.coords[static_cast<std::size_t>(i)][static_cast<std::size_t>(d)]);
  for (int e = 0; e < m.num_elements(); ++e) {
    EXPECT_EQ(m2.hexes[static_cast<std::size_t>(e)], m.hexes[static_cast<std::size_t>(e)]);
    EXPECT_EQ(m2.zone[static_cast<std::size_t>(e)], m.zone[static_cast<std::size_t>(e)]);
  }
  EXPECT_EQ(m2.contact_groups, m.contact_groups);
}

TEST(MeshIO, RoundTripDistortedCoordinatesExactly) {
  gm::SouthwestJapanParams p;
  p.nx = 6;
  p.ny = 5;
  p.nz_slab = 2;
  p.nz_crust = 3;
  const auto m = gm::southwest_japan_like(p);
  std::stringstream ss;
  gm::write_mesh(ss, m);
  const auto m2 = gm::read_mesh(ss);
  for (int i = 0; i < m.num_nodes(); ++i)
    for (int d = 0; d < 3; ++d)
      EXPECT_EQ(m2.coords[static_cast<std::size_t>(i)][static_cast<std::size_t>(d)],
                m.coords[static_cast<std::size_t>(i)][static_cast<std::size_t>(d)])
          << "bit-exact round trip expected";
}

TEST(MeshIO, RejectsGarbage) {
  std::stringstream ss("not-a-mesh 7");
  EXPECT_THROW(gm::read_mesh(ss), geofem::Error);
}

TEST(LocalDataIO, RoundTripPreservesSolve) {
  const auto m = gm::simple_block({3, 3, 2, 3, 3});
  auto sys = geofem::fem::assemble_elasticity(m, {{1.0, 0.3}});
  geofem::contact::add_penalty(sys.a, m.contact_groups, 1e4);
  const auto p = gpart::rcb_contact_aware(m, 3);
  const auto systems = gpart::distribute(sys.a, sys.b, p);

  for (const auto& ls : systems) {
    std::stringstream ss;
    gpart::write_local_system(ss, ls);
    const auto ls2 = gpart::read_local_system(ss);
    EXPECT_EQ(ls2.domain, ls.domain);
    EXPECT_EQ(ls2.num_internal, ls.num_internal);
    EXPECT_EQ(ls2.global_of_local, ls.global_of_local);
    EXPECT_EQ(ls2.a.rowptr, ls.a.rowptr);
    EXPECT_EQ(ls2.a.colind, ls.a.colind);
    ASSERT_EQ(ls2.a.val.size(), ls.a.val.size());
    for (std::size_t i = 0; i < ls.a.val.size(); ++i) EXPECT_EQ(ls2.a.val[i], ls.a.val[i]);
    EXPECT_EQ(ls2.b, ls.b);
    ASSERT_EQ(ls2.links.size(), ls.links.size());
    for (std::size_t l = 0; l < ls.links.size(); ++l) {
      EXPECT_EQ(ls2.links[l].domain, ls.links[l].domain);
      EXPECT_EQ(ls2.links[l].send_local, ls.links[l].send_local);
      EXPECT_EQ(ls2.links[l].recv_local, ls.links[l].recv_local);
    }
  }
}

TEST(LocalDataIO, SaveLoadFiles) {
  const auto m = gm::simple_block({2, 2, 2, 2, 2});
  auto sys = geofem::fem::assemble_elasticity(m, {{1.0, 0.3}});
  const auto p = gpart::rcb(m.coords, 2);
  const auto systems = gpart::distribute(sys.a, sys.b, p);
  gpart::save_distributed("/tmp/geofem_io_test", systems);
  const auto loaded = gpart::load_distributed("/tmp/geofem_io_test", 2);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].num_internal + loaded[1].num_internal, m.num_nodes());
}

TEST(CommCollectives, Broadcast) {
  gd::Runtime::run(4, [](gd::Comm& c) {
    std::vector<double> data;
    if (c.rank() == 2) data = {1.5, 2.5, 3.5};
    const auto got = c.broadcast(2, data);
    ASSERT_EQ(got.size(), 3u);
    EXPECT_DOUBLE_EQ(got[1], 2.5);
  });
}

TEST(CommCollectives, GatherInRankOrder) {
  gd::Runtime::run(3, [](gd::Comm& c) {
    std::vector<double> mine{static_cast<double>(c.rank()), static_cast<double>(10 * c.rank())};
    const auto all = c.gather(0, mine);
    if (c.rank() == 0) {
      ASSERT_EQ(all.size(), 6u);
      for (int r = 0; r < 3; ++r) {
        EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(2 * r)], r);
        EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(2 * r + 1)], 10.0 * r);
      }
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}
