#include <gtest/gtest.h>

#include <cmath>

#include "mesh/hex_mesh.hpp"
#include "mesh/simple_block.hpp"
#include "mesh/southwest_japan.hpp"

namespace gm = geofem::mesh;

TEST(UnitCube, CountsAndBounds) {
  auto m = gm::unit_cube(4, 3, 2, 4.0, 3.0, 2.0);
  EXPECT_EQ(m.num_nodes(), 5 * 4 * 3);
  EXPECT_EQ(m.num_elements(), 4 * 3 * 2);
  EXPECT_EQ(m.num_dof(), 5u * 4u * 3u * 3u);
  const auto box = m.bounding_box();
  EXPECT_DOUBLE_EQ(box.lo[0], 0.0);
  EXPECT_DOUBLE_EQ(box.hi[0], 4.0);
  EXPECT_DOUBLE_EQ(box.hi[2], 2.0);
  m.validate();
}

TEST(UnitCube, PositiveJacobians) {
  auto m = gm::unit_cube(3, 3, 3);
  const auto q = gm::mesh_quality(m);
  EXPECT_GT(q.min_jacobian, 0.0);
  EXPECT_EQ(q.negative_jacobians, 0);
  EXPECT_NEAR(q.max_aspect, 1.0, 1e-12);  // uniform cubes
}

TEST(UnitCube, NodesWhereSelectsSurface) {
  auto m = gm::unit_cube(4, 4, 4);
  auto bottom = m.nodes_where([](double, double, double z) { return z == 0.0; });
  EXPECT_EQ(bottom.size(), 25u);
}

TEST(SimpleBlock, PaperAppendixCounts) {
  // Paper appendix model: 24,000 elements, 27,888 nodes, 83,664 DOF.
  gm::SimpleBlockParams p;  // defaults are the appendix model 20/20/15/20/20
  auto m = gm::simple_block(p);
  EXPECT_EQ(m.num_elements(), 24000);
  EXPECT_EQ(m.num_nodes(), 27888);
  EXPECT_EQ(m.num_dof(), 83664u);
  m.validate();
}

TEST(SimpleBlock, SingleNodeTestCounts) {
  // Paper single-SMP-node model: 784,000 elements, 823,813 nodes.
  gm::SimpleBlockParams p{70, 70, 40, 70, 70};
  auto m = gm::simple_block(p);
  EXPECT_EQ(m.num_elements(), 784000);
  EXPECT_EQ(m.num_nodes(), 823813);
}

TEST(SimpleBlock, ContactGroupSizes) {
  gm::SimpleBlockParams p{4, 3, 2, 3, 3};
  auto m = gm::simple_block(p);
  m.validate();
  int size2 = 0, size3 = 0;
  for (const auto& g : m.contact_groups) {
    if (g.size() == 2) ++size2;
    if (g.size() == 3) ++size3;
    EXPECT_LE(g.size(), 3u);
  }
  // Triple line x=NX1 on the horizontal surface: (ny+1) groups of 3.
  EXPECT_EQ(size3, p.ny + 1);
  // Horizontal surface minus triple line, plus the vertical surface above.
  EXPECT_EQ(size2, (p.ny + 1) * (p.nx1 + p.nx2) + p.nz2 * (p.ny + 1));
}

TEST(SimpleBlock, ZonesAreLabelled) {
  gm::SimpleBlockParams p{2, 2, 1, 2, 2};
  auto m = gm::simple_block(p);
  int z0 = 0, z1 = 0, z2 = 0;
  for (int z : m.zone) (z == 0 ? z0 : z == 1 ? z1 : z2)++;
  EXPECT_EQ(z0, 4 * 1 * 2);
  EXPECT_EQ(z1, 2 * 1 * 2);
  EXPECT_EQ(z2, 2 * 1 * 2);
}

TEST(SouthwestJapan, ValidAndDistorted) {
  gm::SouthwestJapanParams p;
  auto m = gm::southwest_japan_like(p);
  m.validate();
  EXPECT_GT(m.num_elements(), 0);
  EXPECT_FALSE(m.contact_groups.empty());
  const auto q = gm::mesh_quality(m);
  // distorted (non-unit aspect) but not inverted
  EXPECT_GT(q.max_aspect, 1.2);
  EXPECT_GT(q.min_jacobian, 0.0) << "distortion inverted elements";
}

TEST(SouthwestJapan, ZeroDistortionIsSmooth) {
  gm::SouthwestJapanParams p;
  p.distortion = 0.0;
  auto m = gm::southwest_japan_like(p);
  const auto q = gm::mesh_quality(m);
  EXPECT_GT(q.min_jacobian, 0.0);
}

TEST(SouthwestJapan, TripleGroupsOnFaultLine) {
  gm::SouthwestJapanParams p;
  auto m = gm::southwest_japan_like(p);
  int size3 = 0;
  for (const auto& g : m.contact_groups)
    if (g.size() == 3) ++size3;
  EXPECT_EQ(size3, p.nx + 1);  // triple junction line along the interface
}

TEST(SouthwestJapan, DeterministicForSeed) {
  gm::SouthwestJapanParams p;
  auto m1 = gm::southwest_japan_like(p);
  auto m2 = gm::southwest_japan_like(p);
  ASSERT_EQ(m1.num_nodes(), m2.num_nodes());
  for (int i = 0; i < m1.num_nodes(); ++i)
    for (int d = 0; d < 3; ++d)
      EXPECT_DOUBLE_EQ(m1.coords[static_cast<std::size_t>(i)][static_cast<std::size_t>(d)],
                       m2.coords[static_cast<std::size_t>(i)][static_cast<std::size_t>(d)]);
}
