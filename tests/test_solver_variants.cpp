// Solver-equivalence tier for the communication-hiding CG variants
// (DESIGN.md §5j): Gropp's two-overlap CG and the Ghysels–Vanroose pipelined
// CG against the classical reference. Variants reorder dot-product
// arithmetic, so histories are not bitwise-comparable to classic — the
// contract tested here is (a) iteration parity within a small band and final
// residual within tolerance across the Tier-1 preconditioner matrix, (b)
// bitwise determinism of EACH variant across thread counts and halo-overlap
// settings, (c) split-phase reduction faults surface as kCommTimeout on every
// rank instead of hanging, and (d) a variant breakdown retries with kClassic
// on the same preconditioner, in lockstep on every rank.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <vector>

#include "contact/penalty.hpp"
#include "dist/comm.hpp"
#include "dist/dist_solver.hpp"
#include "fem/assembly.hpp"
#include "mesh/simple_block.hpp"
#include "part/local_system.hpp"
#include "part/partition.hpp"
#include "precond/bic.hpp"
#include "precond/diagonal.hpp"
#include "precond/sb_bic0.hpp"
#include "solver/cg.hpp"

namespace gc = geofem::contact;
namespace gd = geofem::dist;
namespace gf = geofem::fem;
namespace gm = geofem::mesh;
namespace gpart = geofem::part;
namespace gp = geofem::precond;
namespace gsolver = geofem::solver;
using geofem::Error;
using geofem::SolveStatus;
using geofem::StatusCode;
using gsolver::CGVariant;

namespace {

struct Problem {
  gm::HexMesh mesh;
  gf::System sys;

  explicit Problem(double lambda = 1e4, gm::SimpleBlockParams bp = {3, 3, 2, 3, 3}) {
    mesh = gm::simple_block(bp);
    sys = gf::assemble_elasticity(mesh, {{1.0, 0.3}});
    gc::add_penalty(sys.a, mesh.contact_groups, lambda);
    gf::BoundaryConditions bc;
    bc.fix_nodes(mesh.nodes_where([](double, double, double z) { return z == 0.0; }), -1);
    const double zmax = mesh.bounding_box().hi[2];
    bc.surface_load(
        mesh, [&](double, double, double z) { return std::abs(z - zmax) < 1e-12; }, 2, -1.0);
    gf::apply_boundary_conditions(sys, bc);
  }
};

/// Parity band from the acceptance criterion: a variant must converge within
/// +10% iterations of classic (plus a small absolute slack for tiny counts —
/// the pipelined recurrences genuinely differ in the last few digits).
void expect_parity(const gsolver::CGResult& classic, const gsolver::CGResult& variant,
                   double tolerance) {
  EXPECT_TRUE(variant.converged()) << geofem::to_string(variant.status);
  EXPECT_LE(variant.iterations, classic.iterations + std::max(3, classic.iterations / 10));
  EXPECT_GE(variant.iterations, classic.iterations - std::max(3, classic.iterations / 10));
  EXPECT_LE(variant.relative_residual, tolerance);
}

gd::PrecondFactory bic0_factory() {
  return [](const gpart::LocalSystem&, const geofem::sparse::BlockCSR& aii,
            geofem::precond::Precision pr) { return std::make_unique<gp::BIC0>(aii, pr); };
}

/// Preconditioner wrapper that sabotages exactly one apply (negates the
/// output, making rho = (r, z) < 0 — a guaranteed breakdown in every variant)
/// and then behaves. The classic retry on the SAME object must converge, so
/// the test isolates the variant-fallback rung from the preconditioner rungs.
class FlakyOnce final : public gp::Preconditioner {
 public:
  FlakyOnce(std::unique_ptr<gp::Preconditioner> inner, int fire_at)
      : inner_(std::move(inner)), fire_at_(fire_at) {}

  void apply(std::span<const double> r, std::span<double> z, geofem::util::FlopCounter* fc,
             geofem::util::LoopStats* ls) const override {
    inner_->apply(r, z, fc, ls);
    if (calls_++ == fire_at_)
      for (double& v : z) v = -v;
  }
  [[nodiscard]] std::size_t memory_bytes() const override { return inner_->memory_bytes(); }
  [[nodiscard]] std::string name() const override { return "flaky(" + inner_->name() + ")"; }
  [[nodiscard]] gp::Desc desc() const override { return inner_->desc(); }

 private:
  std::unique_ptr<gp::Preconditioner> inner_;
  int fire_at_;
  mutable std::atomic<int> calls_{0};
};

}  // namespace

// ---------------------------------------------------------------------------
// to_string coverage (used by telemetry slugs and failure messages)
// ---------------------------------------------------------------------------

TEST(CGVariantNames, RoundTrip) {
  EXPECT_EQ(gsolver::to_string(CGVariant::kClassic), "classic");
  EXPECT_EQ(gsolver::to_string(CGVariant::kGropp), "gropp");
  EXPECT_EQ(gsolver::to_string(CGVariant::kPipelined), "pipelined");
}

// ---------------------------------------------------------------------------
// Serial parity: Gropp / pipelined vs classic across the preconditioner matrix
// ---------------------------------------------------------------------------

class SerialVariantParity : public ::testing::TestWithParam<CGVariant> {};

TEST_P(SerialVariantParity, AcrossPreconditioners) {
  // Mild penalty: the parity contract is meaningful where classic CG itself
  // is not rounding-dominated. The lambda = 1e4 endgame (classic grinds ~130
  // extra iterations from 1e-6 to 1e-8) is covered separately below as a
  // bounded-degradation test — that regime is what the kClassic fallback is
  // for, not a parity regime.
  Problem pb(1e2);
  const auto& a = pb.sys.a;
  const auto sn = gc::build_supernodes(a.n, pb.mesh.contact_groups);

  std::vector<std::pair<std::string, std::unique_ptr<gp::Preconditioner>>> preconds;
  preconds.emplace_back("BIC(0)", std::make_unique<gp::BIC0>(a));
  preconds.emplace_back("BIC(1)", std::make_unique<gp::BlockILUk>(a, 1));
  preconds.emplace_back("BIC(2)", std::make_unique<gp::BlockILUk>(a, 2));
  preconds.emplace_back("SB-BIC(0)", std::make_unique<gp::SBBIC0>(a, sn));
  preconds.emplace_back("BlockDiagonal", std::make_unique<gp::BlockDiagonal>(a));

  gsolver::CGOptions opt;
  opt.tolerance = 1e-8;
  opt.max_iterations = 20000;
  for (const auto& [label, prec] : preconds) {
    SCOPED_TRACE(label);
    std::vector<double> xc(a.ndof(), 0.0), xv(a.ndof(), 0.0);
    opt.variant = CGVariant::kClassic;
    const auto rc = gsolver::pcg(a, *prec, pb.sys.b, xc, opt);
    ASSERT_TRUE(rc.converged());
    opt.variant = GetParam();
    const auto rv = gsolver::pcg(a, *prec, pb.sys.b, xv, opt);
    expect_parity(rc, rv, opt.tolerance);
    EXPECT_EQ(rv.variant_fallbacks, 0);
    // Both solve the same SPD system to the same tolerance: solutions agree.
    double err = 0.0, norm = 0.0;
    for (std::size_t i = 0; i < xc.size(); ++i) {
      err = std::max(err, std::abs(xc[i] - xv[i]));
      norm = std::max(norm, std::abs(xc[i]));
    }
    EXPECT_LT(err, 1e-4 * norm);
  }
}

TEST_P(SerialVariantParity, Fp32StoredPreconditioner) {
  Problem pb(1e2);
  const auto& a = pb.sys.a;
  const gp::SBBIC0 prec(a, gc::build_supernodes(a.n, pb.mesh.contact_groups), false,
                        gp::Precision::kSingle);
  gsolver::CGOptions opt;
  opt.tolerance = 1e-8;
  std::vector<double> xc(a.ndof(), 0.0), xv(a.ndof(), 0.0);
  const auto rc = gsolver::pcg(a, prec, pb.sys.b, xc, opt);
  ASSERT_TRUE(rc.converged());
  opt.variant = GetParam();
  const auto rv = gsolver::pcg(a, prec, pb.sys.b, xv, opt);
  expect_parity(rc, rv, opt.tolerance);
}

INSTANTIATE_TEST_SUITE_P(Variants, SerialVariantParity,
                         ::testing::Values(CGVariant::kGropp, CGVariant::kPipelined),
                         [](const auto& info) { return gsolver::to_string(info.param); });

// ---------------------------------------------------------------------------
// Distributed parity: 4 ranks, ±coarse, ±fp32
// ---------------------------------------------------------------------------

class DistVariantParity : public ::testing::TestWithParam<CGVariant> {
 protected:
  static gd::DistResult run(const std::vector<gpart::LocalSystem>& systems,
                            gd::DistOptions opt, CGVariant v) {
    opt.cg.variant = v;
    return gd::solve_distributed(systems, bic0_factory(), opt);
  }
};

TEST_P(DistVariantParity, FourRanks) {
  Problem pb(1e2);
  const auto p = gpart::rcb_contact_aware(pb.mesh, 4);
  const auto systems = gpart::distribute(pb.sys.a, pb.sys.b, p);
  gd::DistOptions opt;
  opt.cg.tolerance = 1e-8;

  const auto rc = run(systems, opt, CGVariant::kClassic);
  ASSERT_TRUE(rc.converged());
  const auto rv = run(systems, opt, GetParam());
  EXPECT_TRUE(rv.converged()) << geofem::to_string(rv.status);
  EXPECT_LE(rv.iterations, rc.iterations + std::max(3, rc.iterations / 10));
  EXPECT_GE(rv.iterations, rc.iterations - std::max(3, rc.iterations / 10));
  EXPECT_LE(rv.relative_residual, opt.cg.tolerance);
  EXPECT_EQ(rv.variant_fallbacks, 0);
  // Exit decisions derive from allreduced scalars: one status everywhere.
  for (SolveStatus s : rv.status_per_rank) EXPECT_EQ(s, rv.status);
}

TEST_P(DistVariantParity, FourRanksWithCoarseCorrection) {
  Problem pb(1e2);
  const auto p = gpart::rcb_contact_aware(pb.mesh, 4);
  const auto systems = gpart::distribute(pb.sys.a, pb.sys.b, p);
  gd::DistOptions opt;
  opt.cg.tolerance = 1e-8;
  opt.coarse.enabled = true;

  const auto rc = run(systems, opt, CGVariant::kClassic);
  ASSERT_TRUE(rc.converged());
  const auto rv = run(systems, opt, GetParam());
  EXPECT_TRUE(rv.converged()) << geofem::to_string(rv.status);
  // The coarse apply runs its own blocking collectives inside the overlap
  // window of a split-phase reduction — this exercises their independence.
  EXPECT_LE(rv.iterations, rc.iterations + std::max(3, rc.iterations / 10));
  EXPECT_LE(rv.relative_residual, opt.cg.tolerance);
}

TEST_P(DistVariantParity, FourRanksFp32Preconditioner) {
  Problem pb(1e2);
  const auto p = gpart::rcb_contact_aware(pb.mesh, 4);
  const auto systems = gpart::distribute(pb.sys.a, pb.sys.b, p);
  gd::DistOptions opt;
  opt.cg.tolerance = 1e-8;
  opt.precision = gp::Precision::kSingle;

  const auto rc = run(systems, opt, CGVariant::kClassic);
  ASSERT_TRUE(rc.converged());
  const auto rv = run(systems, opt, GetParam());
  EXPECT_TRUE(rv.converged()) << geofem::to_string(rv.status);
  EXPECT_LE(rv.iterations, rc.iterations + std::max(3, rc.iterations / 10));
  EXPECT_LE(rv.relative_residual, opt.cg.tolerance);
}

INSTANTIATE_TEST_SUITE_P(Variants, DistVariantParity,
                         ::testing::Values(CGVariant::kGropp, CGVariant::kPipelined),
                         [](const auto& info) { return gsolver::to_string(info.param); });

// ---------------------------------------------------------------------------
// Pathological regime: degradation is bounded, never silent
// ---------------------------------------------------------------------------

// lambda = 1e4 at 1e-8 is rounding-dominated even for classic CG (it spends
// ~40% of its iterations grinding the last two orders of magnitude). The
// pipelined recurrences are strictly less accurate there; the contract is not
// parity but a bound: the solve still reaches the requested tolerance, either
// directly (with periodic residual replacement absorbing the drift) or via
// the automatic kClassic retry (kFellBack) — never a silent wrong answer or
// an unexplained failure status.
TEST(VariantAttainableAccuracy, PipelinedIllConditionedConvergesOrFallsBack) {
  Problem pb(1e4);
  const auto& a = pb.sys.a;
  const gp::BIC0 prec(a);
  gsolver::CGOptions opt;
  opt.tolerance = 1e-8;
  opt.variant = CGVariant::kPipelined;
  std::vector<double> x(a.ndof(), 0.0);
  const auto res = gsolver::pcg(a, prec, pb.sys.b, x, opt);
  EXPECT_TRUE(res.status == SolveStatus::kConverged || res.status == SolveStatus::kFellBack)
      << geofem::to_string(res.status);
  EXPECT_TRUE(res.converged());
  EXPECT_LE(res.relative_residual, opt.tolerance);
}

TEST(VariantAttainableAccuracy, ReplacementDisabledFallsBackAtTightTolerance) {
  // Without residual replacement the recurrence residual plateaus ~2 digits
  // above classic's floor; the variant rung must catch that (breakdown or
  // stagnation) and recover via classic rather than spin to max_iterations.
  Problem pb(1e4);
  const auto& a = pb.sys.a;
  const gp::BIC0 prec(a);
  gsolver::CGOptions opt;
  opt.tolerance = 1e-8;
  opt.variant = CGVariant::kPipelined;
  opt.pipeline_replace_interval = 0;
  std::vector<double> x(a.ndof(), 0.0);
  const auto res = gsolver::pcg(a, prec, pb.sys.b, x, opt);
  EXPECT_EQ(res.status, SolveStatus::kFellBack);
  EXPECT_EQ(res.variant_fallbacks, 1);
  EXPECT_LE(res.relative_residual, opt.tolerance);
}

// ---------------------------------------------------------------------------
// Bitwise determinism of each variant across team sizes and overlap settings
// ---------------------------------------------------------------------------

class VariantDeterminism : public ::testing::TestWithParam<CGVariant> {};

TEST_P(VariantDeterminism, HistoryBitIdenticalAcrossThreadsAndOverlap) {
  Problem pb(1e4);
  const auto p = gpart::rcb_contact_aware(pb.mesh, 4);
  const auto systems = gpart::distribute(pb.sys.a, pb.sys.b, p);

  std::vector<double> reference;
  for (const int threads : {1, 2, 4}) {
    for (const bool overlap : {false, true}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " overlap=" + std::to_string(overlap));
      gd::DistOptions opt;
      opt.cg.tolerance = 1e-8;
      opt.cg.record_residuals = true;
      opt.cg.variant = GetParam();
      opt.threads = threads;
      opt.overlap = overlap;
      const auto res = gd::solve_distributed(systems, bic0_factory(), opt);
      ASSERT_TRUE(res.converged());
      ASSERT_FALSE(res.residual_history.empty());
      if (reference.empty()) {
        reference = res.residual_history;
        continue;
      }
      ASSERT_EQ(res.residual_history.size(), reference.size());
      for (std::size_t i = 0; i < reference.size(); ++i)
        EXPECT_EQ(res.residual_history[i], reference[i]) << "iteration " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Variants, VariantDeterminism,
                         ::testing::Values(CGVariant::kClassic, CGVariant::kGropp,
                                           CGVariant::kPipelined),
                         [](const auto& info) { return gsolver::to_string(info.param); });

// ---------------------------------------------------------------------------
// Serial vs 1-domain distributed iteration parity per variant
// ---------------------------------------------------------------------------

TEST(VariantSerialDistParity, OneDomainIterationCountsMatch) {
  Problem pb(1e2);
  gpart::Partition p;
  p.num_domains = 1;
  p.domain_of.assign(static_cast<std::size_t>(pb.mesh.num_nodes()), 0);
  const auto systems = gpart::distribute(pb.sys.a, pb.sys.b, p);
  const gp::BIC0 prec(pb.sys.a);

  for (const CGVariant v : {CGVariant::kClassic, CGVariant::kGropp, CGVariant::kPipelined}) {
    SCOPED_TRACE(gsolver::to_string(v));
    gsolver::CGOptions sopt;
    sopt.variant = v;
    std::vector<double> x(pb.sys.a.ndof(), 0.0);
    const auto sres = gsolver::pcg(pb.sys.a, prec, pb.sys.b, x, sopt);
    ASSERT_TRUE(sres.converged());

    gd::DistOptions dopt;
    dopt.cg.variant = v;
    const auto dres = gd::solve_distributed(systems, bic0_factory(), dopt);
    ASSERT_TRUE(dres.converged());
    // Same recurrences; summation order of the global dots differs (serial
    // straight loop vs rank-ascending partials), so allow a whisker.
    EXPECT_NEAR(dres.iterations, sres.iterations, 2);
  }
}

// ---------------------------------------------------------------------------
// Fault injection: a dropped iallreduce contribution starves every rank
// ---------------------------------------------------------------------------

TEST(VariantFault, DroppedIallreduceTimesOutEveryRankWithoutHanging) {
  Problem pb(1e4);
  const auto p = gpart::rcb_contact_aware(pb.mesh, 4);
  const auto systems = gpart::distribute(pb.sys.a, pb.sys.b, p);
  gd::DistOptions opt;
  opt.cg.variant = CGVariant::kPipelined;
  opt.cg.record_residuals = true;
  opt.faults.timeout_seconds = 0.5;
  // Rank 0 withholds its 3rd split-phase contribution: the reduction can
  // never complete, so every rank (including the faulty poster, which keeps a
  // live handle) must surface kCommTimeout within a few deadlines.
  opt.faults.faults.push_back({.from = 0,
                               .to = gd::Fault::kAny,
                               .tag = gd::Comm::kIallreduceTag,
                               .after_messages = 2,
                               .delay_seconds = 0.0});

  const auto t0 = std::chrono::steady_clock::now();
  const auto res = gd::solve_distributed(systems, bic0_factory(), opt);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  EXPECT_EQ(res.status, SolveStatus::kCommTimeout);
  ASSERT_EQ(res.status_per_rank.size(), 4u);
  for (SolveStatus s : res.status_per_rank) EXPECT_EQ(s, SolveStatus::kCommTimeout);
  EXPECT_GE(res.traffic_per_rank[0].messages_dropped, 1u);
  // Sanitizer builds run ~10x slower; anything near this bound is a hang.
  EXPECT_LT(elapsed, 30.0);
}

TEST(VariantFault, DelayedIallreduceStillConverges) {
  Problem pb(1e4, {3, 3, 2, 3, 3});
  const auto p = gpart::rcb_contact_aware(pb.mesh, 2);
  const auto systems = gpart::distribute(pb.sys.a, pb.sys.b, p);
  gd::DistOptions opt;
  opt.cg.variant = CGVariant::kGropp;
  opt.faults.timeout_seconds = 20.0;
  opt.faults.faults.push_back({.from = 0,
                               .to = gd::Fault::kAny,
                               .tag = gd::Comm::kIallreduceTag,
                               .after_messages = 0,
                               .delay_seconds = 0.002});
  const auto res = gd::solve_distributed(systems, bic0_factory(), opt);
  EXPECT_EQ(res.status, SolveStatus::kConverged);
  EXPECT_EQ(res.traffic_per_rank[0].messages_dropped, 0u);
}

// ---------------------------------------------------------------------------
// Variant breakdown -> kClassic fallback, serial and lockstep-distributed
// ---------------------------------------------------------------------------

TEST(VariantFallback, SerialPipelinedBreakdownRetriesClassicOnSamePreconditioner) {
  Problem pb(1e4);
  const auto& a = pb.sys.a;
  const FlakyOnce prec(std::make_unique<gp::BIC0>(a), 3);
  gsolver::CGOptions opt;
  opt.variant = CGVariant::kPipelined;
  opt.record_residuals = true;
  std::vector<double> x(a.ndof(), 0.0);
  const auto res = gsolver::pcg(a, prec, pb.sys.b, x, opt);
  EXPECT_EQ(res.status, SolveStatus::kFellBack);
  EXPECT_TRUE(res.converged());
  EXPECT_EQ(res.variant_fallbacks, 1);
  EXPECT_LE(res.relative_residual, opt.tolerance);
  // The warm restart pushes the recomputed true residual, then the classic
  // attempt's trajectory — history keeps growing past the breakdown.
  EXPECT_GT(static_cast<int>(res.residual_history.size()), res.iterations);
}

TEST(VariantFallback, DistributedBreakdownFallsBackInLockstep) {
  Problem pb(1e4);
  const auto p = gpart::rcb_contact_aware(pb.mesh, 4);
  const auto systems = gpart::distribute(pb.sys.a, pb.sys.b, p);
  gd::DistOptions opt;
  opt.cg.variant = CGVariant::kPipelined;
  // Every rank's preconditioner misfires on the same apply index (the ranks
  // run in lockstep), so the allreduced gamma goes negative globally and all
  // ranks take the classic retry together.
  const gd::PrecondFactory flaky_factory =
      [](const gpart::LocalSystem&, const geofem::sparse::BlockCSR& aii,
         geofem::precond::Precision) {
        return std::make_unique<FlakyOnce>(std::make_unique<gp::BIC0>(aii), 3);
      };
  const auto res = gd::solve_distributed(systems, flaky_factory, opt);
  EXPECT_EQ(res.status, SolveStatus::kFellBack);
  EXPECT_TRUE(res.converged());
  EXPECT_EQ(res.variant_fallbacks, 1);
  for (SolveStatus s : res.status_per_rank) EXPECT_EQ(s, SolveStatus::kFellBack);
  EXPECT_LE(res.relative_residual, opt.cg.tolerance);
}

TEST(VariantFallback, ClassicVariantNeverTriggersVariantFallback) {
  Problem pb(1e4);
  const auto p = gpart::rcb_contact_aware(pb.mesh, 4);
  const auto systems = gpart::distribute(pb.sys.a, pb.sys.b, p);
  gd::DistOptions opt;  // kClassic default
  const auto res = gd::solve_distributed(systems, bic0_factory(), opt);
  ASSERT_TRUE(res.converged());
  EXPECT_EQ(res.variant_fallbacks, 0);
}
