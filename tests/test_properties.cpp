// Property-based and parameterized suites over the core invariants:
// mesh count formulas, SPD preservation, ordering validity across color
// targets, DJDS/CSR equivalence, partition coverage, ILU pattern monotonicity,
// and distributed/serial solution agreement across rank counts.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>
#include <thread>

#include "contact/penalty.hpp"
#include "dist/dist_solver.hpp"
#include "fem/assembly.hpp"
#include "mesh/simple_block.hpp"
#include "mesh/southwest_japan.hpp"
#include "par/par.hpp"
#include "part/local_system.hpp"
#include "part/partition.hpp"
#include "precond/bic.hpp"
#include "precond/sb_bic0.hpp"
#include "reorder/coloring.hpp"
#include "reorder/djds.hpp"
#include "solver/cg.hpp"
#include "sparse/vector_ops.hpp"
#include "util/rng.hpp"

namespace gc = geofem::contact;
namespace gd = geofem::dist;
namespace gf = geofem::fem;
namespace gm = geofem::mesh;
namespace gpart = geofem::part;
namespace gp = geofem::precond;
namespace gr = geofem::reorder;
namespace gs = geofem::sparse;

// ---------------------------------------------------------------------------
// Mesh count formulas for the simple block model (paper-validated closed form)
// ---------------------------------------------------------------------------

class SimpleBlockCounts : public ::testing::TestWithParam<gm::SimpleBlockParams> {};

TEST_P(SimpleBlockCounts, MatchClosedForm) {
  const auto p = GetParam();
  const auto m = gm::simple_block(p);
  const long long elements = static_cast<long long>(p.nx1 + p.nx2) * p.ny * p.nz1 +
                             static_cast<long long>(p.nx1) * p.ny * p.nz2 +
                             static_cast<long long>(p.nx2) * p.ny * p.nz2;
  const long long nodes =
      static_cast<long long>(p.nx1 + p.nx2 + 1) * (p.ny + 1) * (p.nz1 + 1) +
      static_cast<long long>(p.nx1 + 1) * (p.ny + 1) * (p.nz2 + 1) +
      static_cast<long long>(p.nx2 + 1) * (p.ny + 1) * (p.nz2 + 1);
  EXPECT_EQ(m.num_elements(), elements);
  EXPECT_EQ(m.num_nodes(), nodes);
  m.validate();
  // contact groups cover both internal surfaces exactly once
  const long long groups = static_cast<long long>(p.ny + 1) * (p.nx1 + p.nx2 + 1) +
                           static_cast<long long>(p.ny + 1) * p.nz2;
  EXPECT_EQ(static_cast<long long>(m.contact_groups.size()), groups);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SimpleBlockCounts,
                         ::testing::Values(gm::SimpleBlockParams{1, 1, 1, 1, 1},
                                           gm::SimpleBlockParams{2, 3, 4, 5, 6},
                                           gm::SimpleBlockParams{5, 2, 3, 4, 2},
                                           gm::SimpleBlockParams{7, 7, 5, 7, 7},
                                           gm::SimpleBlockParams{20, 20, 15, 20, 20}));

// ---------------------------------------------------------------------------
// Penalty SPD property across group sizes and lambdas
// ---------------------------------------------------------------------------

class PenaltySPD : public ::testing::TestWithParam<double> {};

TEST_P(PenaltySPD, QuadraticFormNonNegative) {
  const double lambda = GetParam();
  gm::HexMesh m = gm::simple_block({2, 2, 2, 2, 2});
  auto sys = gf::assemble_elasticity(m, {{1.0, 0.3}});
  const auto before = sys.a;
  gc::add_penalty(sys.a, m.contact_groups, lambda);
  // x' (A_pen - A) x >= 0 for random x: the added part is PSD
  geofem::util::Rng rng(42);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> x(sys.a.ndof()), y1(x.size()), y2(x.size());
    for (auto& v : x) v = rng.uniform(-1, 1);
    sys.a.spmv(x, y1);
    before.spmv(x, y2);
    double q = 0;
    for (std::size_t i = 0; i < x.size(); ++i) q += x[i] * (y1[i] - y2[i]);
    EXPECT_GE(q, -1e-9 * lambda);
  }
}

INSTANTIATE_TEST_SUITE_P(Lambdas, PenaltySPD, ::testing::Values(1.0, 1e2, 1e4, 1e6, 1e8, 1e10));

// ---------------------------------------------------------------------------
// Coloring validity across target counts and both mesh families
// ---------------------------------------------------------------------------

class ColoringTargets : public ::testing::TestWithParam<int> {};

TEST_P(ColoringTargets, MCValidOnBothMeshes) {
  const int target = GetParam();
  {
    gm::HexMesh m = gm::simple_block({3, 3, 2, 3, 3});
    auto sys = gf::assemble_elasticity(m, {{1.0, 0.3}});
    gc::add_penalty(sys.a, m.contact_groups, 1e4);
    const auto g = gs::graph_of(sys.a);
    EXPECT_TRUE(gr::multicolor(g, target).valid_for(g));
    EXPECT_TRUE(gr::cm_rcm(g, target).valid_for(g));
  }
  {
    gm::SouthwestJapanParams p;
    p.nx = 8;
    p.ny = 6;
    p.nz_slab = 3;
    p.nz_crust = 4;
    gm::HexMesh m = gm::southwest_japan_like(p);
    auto sys = gf::assemble_elasticity(m, {{1.0, 0.3}});
    gc::add_penalty(sys.a, m.contact_groups, 1e4);
    const auto g = gs::graph_of(sys.a);
    EXPECT_TRUE(gr::multicolor(g, target).valid_for(g));
  }
}

INSTANTIATE_TEST_SUITE_P(Targets, ColoringTargets, ::testing::Values(1, 2, 4, 13, 30, 99, 300));

// ---------------------------------------------------------------------------
// DJDS spmv equivalence across color counts and npe
// ---------------------------------------------------------------------------

struct DJDSParam {
  int colors;
  int npe;
};

class DJDSEquivalence : public ::testing::TestWithParam<DJDSParam> {};

TEST_P(DJDSEquivalence, SpmvMatchesCSR) {
  const auto [colors, npe] = GetParam();
  gm::HexMesh m = gm::simple_block({3, 2, 2, 2, 3});
  auto sys = gf::assemble_elasticity(m, {{1.0, 0.3}});
  gc::add_penalty(sys.a, m.contact_groups, 1e5);
  auto sn = gc::build_supernodes(sys.a.n, m.contact_groups);
  const auto g = gs::graph_of(sys.a);
  const auto q = gr::quotient_graph(g, sn.node_to_super, sn.count());
  const auto col = gr::lift_coloring(gr::multicolor(q, colors), sn.node_to_super, sys.a.n);
  gr::DJDSOptions opt;
  opt.npe = npe;
  const gr::DJDSMatrix dj(sys.a, col, &sn, opt);

  geofem::util::Rng rng(7);
  std::vector<double> x(sys.a.ndof()), y(sys.a.ndof()), px(x.size()), py(x.size());
  for (auto& v : x) v = rng.uniform(-1, 1);
  sys.a.spmv(x, y);
  for (int i = 0; i < sys.a.n; ++i)
    for (int c = 0; c < 3; ++c)
      px[static_cast<std::size_t>(dj.perm()[static_cast<std::size_t>(i)] * 3 + c)] =
          x[static_cast<std::size_t>(i * 3 + c)];
  dj.spmv(px, py);
  for (int i = 0; i < sys.a.n; ++i)
    for (int c = 0; c < 3; ++c)
      EXPECT_NEAR(py[static_cast<std::size_t>(dj.perm()[static_cast<std::size_t>(i)] * 3 + c)],
                  y[static_cast<std::size_t>(i * 3 + c)], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Grid, DJDSEquivalence,
                         ::testing::Values(DJDSParam{2, 1}, DJDSParam{5, 2}, DJDSParam{10, 8},
                                           DJDSParam{40, 8}, DJDSParam{40, 3},
                                           DJDSParam{100, 16}));

// ---------------------------------------------------------------------------
// Partition properties across domain counts
// ---------------------------------------------------------------------------

class PartitionCounts : public ::testing::TestWithParam<int> {};

TEST_P(PartitionCounts, RCBCoversAndBalances) {
  const int ndom = GetParam();
  gm::HexMesh m = gm::simple_block({4, 4, 3, 4, 4});
  const auto p = gpart::rcb(m.coords, ndom);
  EXPECT_EQ(static_cast<int>(p.domain_of.size()), m.num_nodes());
  const auto sizes = p.domain_sizes();
  EXPECT_EQ(static_cast<int>(sizes.size()), ndom);
  for (int s : sizes) EXPECT_GT(s, 0);
  EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), 0), m.num_nodes());
  EXPECT_LT(p.imbalance_percent(), 25.0);
}

TEST_P(PartitionCounts, ContactAwareNeverSplitsGroups) {
  const int ndom = GetParam();
  gm::HexMesh m = gm::simple_block({4, 4, 3, 4, 4});
  const auto p = gpart::rcb_contact_aware(m, ndom);
  EXPECT_EQ(gpart::split_contact_groups(m, p), 0);
}

INSTANTIATE_TEST_SUITE_P(Domains, PartitionCounts, ::testing::Values(2, 3, 5, 8, 13, 16, 27));

// ---------------------------------------------------------------------------
// ILU(k) pattern monotonicity
// ---------------------------------------------------------------------------

TEST(ILUPattern, GrowsMonotonicallyWithLevel) {
  gm::HexMesh m = gm::simple_block({3, 3, 2, 3, 3});
  auto sys = gf::assemble_elasticity(m, {{1.0, 0.3}});
  gc::add_penalty(sys.a, m.contact_groups, 1e4);
  std::size_t prev = 0;
  for (int level = 0; level <= 3; ++level) {
    gp::BlockILUk ilu(sys.a, level);
    EXPECT_GE(ilu.factor_blocks(), prev) << "level " << level;
    prev = ilu.factor_blocks();
  }
  // level 0 pattern == off-diagonal original pattern
  gp::BlockILUk ilu0(sys.a, 0);
  EXPECT_EQ(ilu0.factor_blocks(),
            static_cast<std::size_t>(sys.a.nnz_blocks() - sys.a.n));
}

// ---------------------------------------------------------------------------
// Distributed == serial across rank counts (solution agreement)
// ---------------------------------------------------------------------------

class DistAgreement : public ::testing::TestWithParam<int> {};

TEST_P(DistAgreement, SolutionMatchesSerial) {
  const int ranks = GetParam();
  gm::HexMesh m = gm::simple_block({3, 3, 2, 3, 3});
  auto sys = gf::assemble_elasticity(m, {{1.0, 0.3}});
  gc::add_penalty(sys.a, m.contact_groups, 1e4);
  gf::BoundaryConditions bc;
  bc.fix_nodes(m.nodes_where([](double, double, double z) { return z == 0.0; }), -1);
  const double zmax = m.bounding_box().hi[2];
  bc.surface_load(m, [&](double, double, double z) { return std::abs(z - zmax) < 1e-9; }, 2,
                  -1.0);
  gf::apply_boundary_conditions(sys, bc);

  gp::BIC0 prec(sys.a);
  std::vector<double> x_ref(sys.a.ndof(), 0.0);
  auto sres = geofem::solver::pcg(sys.a, prec, sys.b, x_ref,
                                  {.tolerance = 1e-10, .max_iterations = 10000});
  ASSERT_TRUE(sres.converged());

  const auto p = gpart::rcb_contact_aware(m, ranks);
  const auto systems = gpart::distribute(sys.a, sys.b, p);
  std::vector<double> x;
  gd::DistOptions dopt;
  dopt.cg.tolerance = 1e-10;
  dopt.cg.max_iterations = 10000;
  const auto dres = gd::solve_distributed(
      systems,
      [](const gpart::LocalSystem&, const gs::BlockCSR& aii, geofem::precond::Precision) {
        return std::make_unique<gp::BIC0>(aii);
      },
      dopt, &x);
  ASSERT_TRUE(dres.converged());
  double err = 0, scale = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    err = std::max(err, std::abs(x[i] - x_ref[i]));
    scale = std::max(scale, std::abs(x_ref[i]));
  }
  EXPECT_LT(err, 1e-6 * scale) << "ranks " << ranks;
}

INSTANTIATE_TEST_SUITE_P(Ranks, DistAgreement, ::testing::Values(2, 3, 4, 7, 8, 12));

// ---------------------------------------------------------------------------
// SB-BIC(0) iteration flatness across the full lambda range (the paper's
// core claim as a property test)
// ---------------------------------------------------------------------------

class SBFlatness : public ::testing::TestWithParam<double> {};

TEST_P(SBFlatness, IterationsIndependentOfLambda) {
  static int baseline = -1;
  const double lambda = GetParam();
  gm::HexMesh m = gm::simple_block({3, 3, 2, 3, 3});
  auto sys = gf::assemble_elasticity(m, {{1.0, 0.3}});
  gc::add_penalty(sys.a, m.contact_groups, lambda);
  gf::BoundaryConditions bc;
  bc.fix_nodes(m.nodes_where([](double, double, double z) { return z == 0.0; }), -1);
  const double zmax = m.bounding_box().hi[2];
  bc.surface_load(m, [&](double, double, double z) { return std::abs(z - zmax) < 1e-9; }, 2,
                  -1.0);
  gf::apply_boundary_conditions(sys, bc);
  auto sn = gc::build_supernodes(m.num_nodes(), m.contact_groups);
  gp::SBBIC0 prec(sys.a, sn);
  std::vector<double> x(sys.a.ndof(), 0.0);
  const auto res = geofem::solver::pcg(sys.a, prec, sys.b, x, {.max_iterations = 2000});
  ASSERT_TRUE(res.converged());
  if (baseline < 0) baseline = res.iterations;
  EXPECT_LE(std::abs(res.iterations - baseline), 4)
      << "lambda " << lambda << ": " << res.iterations << " vs baseline " << baseline;
}

INSTANTIATE_TEST_SUITE_P(Lambdas, SBFlatness,
                         ::testing::Values(1e2, 1e4, 1e6, 1e8, 1e10));

// ---------------------------------------------------------------------------
// Hybrid kernels: threaded SpMV and BLAS-1 bitwise equal to serial
// (the par layer's determinism contract as a property over random inputs)
// ---------------------------------------------------------------------------

namespace {
namespace gpar = geofem::par;

/// Assembled contact matrix with random values in x (deterministic seed).
geofem::fem::System random_system(geofem::util::Rng& rng, std::vector<double>& x) {
  gm::HexMesh m = gm::simple_block({3, 2, 2, 2, 3});
  auto sys = gf::assemble_elasticity(m, {{1.0, 0.3}});
  gc::add_penalty(sys.a, m.contact_groups, 1e5);
  x.resize(sys.a.ndof());
  for (auto& v : x) v = rng.uniform(-1, 1);
  return sys;
}
}  // namespace

class HybridTeamSizes : public ::testing::TestWithParam<int> {};

TEST_P(HybridTeamSizes, BlockCSRSpmvBitwiseEqualsSerial) {
  const int team = GetParam();
  geofem::util::Rng rng(123);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> x;
    auto sys = random_system(rng, x);
    std::vector<double> y1(x.size()), yt(x.size());
    {
      gpar::TeamScope s(1);
      sys.a.spmv(x, y1);
    }
    {
      gpar::TeamScope s(team);
      sys.a.spmv(x, yt);
    }
    for (std::size_t i = 0; i < x.size(); ++i)
      ASSERT_EQ(y1[i], yt[i]) << "trial " << trial << " component " << i;
  }
}

TEST_P(HybridTeamSizes, DJDSSpmvBitwiseEqualsSerial) {
  const int team = GetParam();
  geofem::util::Rng rng(321);
  std::vector<double> x;
  auto sys = random_system(rng, x);
  auto sn = gc::build_supernodes(sys.a.n, gm::simple_block({3, 2, 2, 2, 3}).contact_groups);
  const auto g = gs::graph_of(sys.a);
  const auto q = gr::quotient_graph(g, sn.node_to_super, sn.count());
  const auto col = gr::lift_coloring(gr::multicolor(q, 5), sn.node_to_super, sys.a.n);
  gr::DJDSOptions opt;
  opt.npe = 2;
  const gr::DJDSMatrix dj(sys.a, col, &sn, opt);
  std::vector<double> y1(x.size()), yt(x.size());
  {
    gpar::TeamScope s(1);
    dj.spmv(x, y1);
  }
  {
    gpar::TeamScope s(team);
    dj.spmv(x, yt);
  }
  for (std::size_t i = 0; i < x.size(); ++i) ASSERT_EQ(y1[i], yt[i]) << "component " << i;
}

TEST_P(HybridTeamSizes, DotAndAxpyBitwiseEqualSerial) {
  const int team = GetParam();
  geofem::util::Rng rng(777);
  // lengths straddling the reduction-chunk and grain boundaries
  for (std::size_t n : {1000u, 1024u, 1025u, 5000u, 100000u}) {
    std::vector<double> x(n), y(n);
    for (auto& v : x) v = rng.uniform(-1, 1);
    for (auto& v : y) v = rng.uniform(-1, 1);
    double d1, dt;
    std::vector<double> a1 = y, at = y;
    {
      gpar::TeamScope s(1);
      d1 = gs::dot(x, y);
      gs::axpy(0.37, x, a1);
    }
    {
      gpar::TeamScope s(team);
      dt = gs::dot(x, y);
      gs::axpy(0.37, x, at);
    }
    ASSERT_EQ(d1, dt) << "n=" << n;
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(a1[i], at[i]) << "n=" << n << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Teams, HybridTeamSizes, ::testing::Values(2, 3, 4, 8));

// ---------------------------------------------------------------------------
// Interior/boundary row split invariants across rank counts
// ---------------------------------------------------------------------------

class RowSplitProperty : public ::testing::TestWithParam<int> {};

TEST_P(RowSplitProperty, PartitionsRowsExactlyByExternalColumns) {
  const int ranks = GetParam();
  gm::HexMesh m = gm::simple_block({4, 3, 2, 3, 4});
  auto sys = gf::assemble_elasticity(m, {{1.0, 0.3}});
  gc::add_penalty(sys.a, m.contact_groups, 1e4);
  const auto p = gpart::rcb_contact_aware(m, ranks);
  const auto systems = gpart::distribute(sys.a, sys.b, p);
  for (const auto& ls : systems) {
    const auto split = ls.row_split();
    // every internal row appears exactly once, ascending within each list
    std::vector<int> seen(static_cast<std::size_t>(ls.num_internal), 0);
    for (int i : split.interior) ++seen[static_cast<std::size_t>(i)];
    for (int i : split.boundary) ++seen[static_cast<std::size_t>(i)];
    for (int i = 0; i < ls.num_internal; ++i)
      ASSERT_EQ(seen[static_cast<std::size_t>(i)], 1) << "rank " << ls.domain << " row " << i;
    EXPECT_TRUE(std::is_sorted(split.interior.begin(), split.interior.end()));
    EXPECT_TRUE(std::is_sorted(split.boundary.begin(), split.boundary.end()));
    // boundary rows are exactly those with an external column
    for (int i : split.interior)
      for (int e = ls.a.rowptr[i]; e < ls.a.rowptr[i + 1]; ++e)
        ASSERT_LT(ls.a.colind[e], ls.num_internal)
            << "rank " << ls.domain << " interior row " << i << " reads an external column";
    for (int i : split.boundary) {
      bool external = false;
      for (int e = ls.a.rowptr[i]; e < ls.a.rowptr[i + 1]; ++e)
        external = external || ls.a.colind[e] >= ls.num_internal;
      ASSERT_TRUE(external) << "rank " << ls.domain << " boundary row " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, RowSplitProperty, ::testing::Values(2, 3, 4, 8, 12));

// ---------------------------------------------------------------------------
// Split-phase allreduce properties across rank counts (the reduction primitive
// under the communication-hiding CG variants, DESIGN.md §5j)
// ---------------------------------------------------------------------------

class SplitPhaseReduce : public ::testing::TestWithParam<int> {};

// post -> (test)* -> wait walks the documented handle states: `posted` on
// return from iallreduce_sum, `done` once a poll or wait observes completion,
// and both test() and wait() are idempotent on a completed handle.
TEST_P(SplitPhaseReduce, PostTestWaitStateMachine) {
  const int nranks = GetParam();
  gd::Runtime::run(nranks, [&](gd::Comm& c) {
    const std::vector<double> payload = {1.0 + c.rank(), 2.0 * c.rank()};
    gd::PendingReduce op = c.iallreduce_sum(payload);
    ASSERT_TRUE(op.posted);
    ASSERT_FALSE(op.done);
    ASSERT_EQ(op.len, payload.size());
    while (!c.test(op)) std::this_thread::yield();
    ASSERT_TRUE(op.done);
    // small-integer payloads sum exactly, so equality is bitwise
    double s0 = 0.0, s1 = 0.0;
    for (int r = 0; r < nranks; ++r) {
      s0 += 1.0 + r;
      s1 += 2.0 * r;
    }
    ASSERT_EQ(op.result.size(), payload.size());
    EXPECT_EQ(op.result[0], s0);
    EXPECT_EQ(op.result[1], s1);
    // test() keeps answering true from the cache; wait() returns the same
    // vector without re-entering the runtime.
    EXPECT_TRUE(c.test(op));
    const auto via_wait = c.wait(op);
    EXPECT_EQ(via_wait, op.result);
    EXPECT_EQ(c.wait(op), via_wait);
  });
}

// A fresh handle finished by wait() alone (no test() polling) must agree with
// one finished by polling — the two completion paths share one result.
TEST_P(SplitPhaseReduce, WaitWithoutPollingMatchesPolledResult) {
  const int nranks = GetParam();
  gd::Runtime::run(nranks, [&](gd::Comm& c) {
    geofem::util::Rng rng(917u + static_cast<unsigned>(c.rank()));
    std::vector<double> payload(5);
    for (auto& v : payload) v = rng.next_double() - 0.5;
    gd::PendingReduce polled = c.iallreduce_sum(payload);
    gd::PendingReduce waited = c.iallreduce_sum(payload);
    while (!c.test(polled)) std::this_thread::yield();
    const auto direct = c.wait(waited);
    ASSERT_EQ(direct.size(), polled.result.size());
    for (std::size_t i = 0; i < direct.size(); ++i) ASSERT_EQ(direct[i], polled.result[i]);
  });
}

// The fixed-shape rank-ascending combine makes the split-phase reduction
// bit-identical to the blocking vector allreduce for the same inputs, no
// matter how rank arrival is staggered or in which order a rank completes the
// outstanding handles. This is the property the CG variants' determinism
// tests lean on.
TEST_P(SplitPhaseReduce, BitIdenticalToBlockingAllreduceUnderReorderedCompletion) {
  const int nranks = GetParam();
  constexpr int kRounds = 6;
  gd::Runtime::run(nranks, [&](gd::Comm& c) {
    geofem::util::Rng rng(4242u * static_cast<unsigned>(nranks) +
                          static_cast<unsigned>(c.rank()));
    for (int round = 0; round < kRounds; ++round) {
      std::vector<double> a(7), b(3);
      for (auto& v : a) v = 2.0 * rng.next_double() - 1.0;
      for (auto& v : b) v = 10.0 * rng.next_double();
      // stagger posting so the per-sequence arrival order varies by rank and
      // round; the combine order must stay rank-ascending regardless
      std::this_thread::sleep_for(
          std::chrono::microseconds(50 * ((c.rank() + round) % nranks)));
      gd::PendingReduce ha = c.iallreduce_sum(a);
      gd::PendingReduce hb = c.iallreduce_sum(b);
      // a blocking collective may run while split-phase handles are in flight
      const std::vector<double> blocking_a = c.allreduce_sum(std::span<const double>(a));
      const std::vector<double> blocking_b = c.allreduce_sum(std::span<const double>(b));
      // complete out of posting order on odd (rank + round) parities
      if ((c.rank() + round) % 2 == 0) {
        c.wait(ha);
        while (!c.test(hb)) std::this_thread::yield();
      } else {
        c.wait(hb);
        while (!c.test(ha)) std::this_thread::yield();
      }
      ASSERT_EQ(ha.result.size(), blocking_a.size());
      ASSERT_EQ(hb.result.size(), blocking_b.size());
      for (std::size_t i = 0; i < blocking_a.size(); ++i)
        ASSERT_EQ(ha.result[i], blocking_a[i]) << "round " << round << " i " << i;
      for (std::size_t i = 0; i < blocking_b.size(); ++i)
        ASSERT_EQ(hb.result[i], blocking_b[i]) << "round " << round << " i " << i;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Ranks, SplitPhaseReduce, ::testing::Values(2, 3, 4, 8));
