#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "contact/penalty.hpp"
#include "dist/comm.hpp"
#include "dist/dist_solver.hpp"
#include "fem/assembly.hpp"
#include "mesh/simple_block.hpp"
#include "mesh/hex_mesh.hpp"
#include "part/local_system.hpp"
#include "part/partition.hpp"
#include "precond/bic.hpp"
#include "precond/diagonal.hpp"
#include "precond/sb_bic0.hpp"
#include "solver/cg.hpp"

namespace gc = geofem::contact;
namespace gd = geofem::dist;
namespace gf = geofem::fem;
namespace gm = geofem::mesh;
namespace gpart = geofem::part;
namespace gp = geofem::precond;

namespace {

struct Problem {
  gm::HexMesh mesh;
  gf::System sys;

  explicit Problem(double lambda = 1e4, gm::SimpleBlockParams bp = {3, 3, 2, 3, 3}) {
    mesh = gm::simple_block(bp);
    sys = gf::assemble_elasticity(mesh, {{1.0, 0.3}});
    gc::add_penalty(sys.a, mesh.contact_groups, lambda);
    gf::BoundaryConditions bc;
    bc.fix_nodes(mesh.nodes_where([](double, double, double z) { return z == 0.0; }), -1);
    const double zmax = mesh.bounding_box().hi[2];
    bc.surface_load(
        mesh, [&](double, double, double z) { return std::abs(z - zmax) < 1e-12; }, 2, -1.0);
    gf::apply_boundary_conditions(sys, bc);
  }
};

gd::PrecondFactory bic0_factory() {
  return [](const gpart::LocalSystem&, const geofem::sparse::BlockCSR& aii, geofem::precond::Precision) {
    return std::make_unique<gp::BIC0>(aii);
  };
}

}  // namespace

// ---------------------------------------------------------------------------
// Comm runtime
// ---------------------------------------------------------------------------

TEST(Comm, PointToPointRoundRobin) {
  auto stats = gd::Runtime::run(4, [](gd::Comm& c) {
    const int next = (c.rank() + 1) % c.size();
    const int prev = (c.rank() + c.size() - 1) % c.size();
    std::vector<double> msg{static_cast<double>(c.rank()), 42.0};
    c.send(next, 1, msg);
    auto got = c.recv(prev, 1);
    ASSERT_EQ(got.size(), 2u);
    EXPECT_DOUBLE_EQ(got[0], prev);
  });
  for (const auto& s : stats) {
    EXPECT_EQ(s.messages_sent, 1u);
    EXPECT_EQ(s.bytes_sent, 16u);
  }
}

TEST(Comm, FifoPerChannel) {
  gd::Runtime::run(2, [](gd::Comm& c) {
    if (c.rank() == 0) {
      for (int k = 0; k < 10; ++k) {
        std::vector<double> msg{static_cast<double>(k)};
        c.send(1, 3, msg);
      }
    } else {
      for (int k = 0; k < 10; ++k) {
        auto got = c.recv(0, 3);
        EXPECT_DOUBLE_EQ(got[0], k);
      }
    }
  });
}

TEST(Comm, AllreduceSumAndMax) {
  gd::Runtime::run(5, [](gd::Comm& c) {
    const double s = c.allreduce_sum(static_cast<double>(c.rank() + 1));
    EXPECT_DOUBLE_EQ(s, 15.0);
    const double m = c.allreduce_max(static_cast<double>(c.rank()));
    EXPECT_DOUBLE_EQ(m, 4.0);
    // back-to-back generations
    const double s2 = c.allreduce_sum(1.0);
    EXPECT_DOUBLE_EQ(s2, 5.0);
  });
}

TEST(Comm, PropagatesExceptions) {
  EXPECT_THROW(gd::Runtime::run(2, [](gd::Comm& c) {
                 c.barrier();
                 throw std::runtime_error("rank failure");
               }),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Partitioning
// ---------------------------------------------------------------------------

TEST(Partition, RCBBalances) {
  Problem pb;
  auto p = gpart::rcb(pb.mesh.coords, 8);
  EXPECT_EQ(p.num_domains, 8);
  EXPECT_LT(p.imbalance_percent(), 5.0);
}

TEST(Partition, RCBWorksForNonPowerOfTwo) {
  Problem pb;
  for (int nd : {3, 5, 7, 12}) {
    auto p = gpart::rcb(pb.mesh.coords, nd);
    auto sizes = p.domain_sizes();
    for (int s : sizes) EXPECT_GT(s, 0);
    EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), 0), pb.mesh.num_nodes());
  }
}

TEST(Partition, NodeBlocksSplitContactGroups) {
  Problem pb;
  auto p = gpart::by_node_blocks(pb.mesh.num_nodes(), 8);
  EXPECT_GT(gpart::split_contact_groups(pb.mesh, p), 0);
}

TEST(Partition, ContactAwareKeepsGroupsTogether) {
  Problem pb;
  auto p = gpart::rcb_contact_aware(pb.mesh, 8);
  EXPECT_EQ(gpart::split_contact_groups(pb.mesh, p), 0);
  EXPECT_LT(p.imbalance_percent(), 10.0);
}

TEST(Partition, DistributeCoversSystem) {
  Problem pb;
  auto p = gpart::rcb_contact_aware(pb.mesh, 4);
  auto systems = gpart::distribute(pb.sys.a, pb.sys.b, p);
  ASSERT_EQ(systems.size(), 4u);
  int total_internal = 0;
  for (const auto& ls : systems) {
    total_internal += ls.num_internal;
    // comm tables symmetric: every link has both directions populated
    for (const auto& link : ls.links) {
      EXPECT_FALSE(link.recv_local.empty());
      EXPECT_FALSE(link.send_local.empty());
      // recv targets are externals, send sources are internals
      for (int l : link.recv_local) EXPECT_GE(l, ls.num_internal);
      for (int l : link.send_local) EXPECT_LT(l, ls.num_internal);
    }
  }
  EXPECT_EQ(total_internal, pb.mesh.num_nodes());
}

TEST(Partition, LocalContactGroupsDropCutGroups) {
  Problem pb;
  auto p = gpart::by_node_blocks(pb.mesh.num_nodes(), 8);
  auto systems = gpart::distribute(pb.sys.a, pb.sys.b, p);
  std::size_t local_total = 0;
  for (const auto& ls : systems) local_total += ls.local_contact_groups(pb.mesh.contact_groups).size();
  EXPECT_LT(local_total, pb.mesh.contact_groups.size());  // cuts lost some groups

  auto pc = gpart::rcb_contact_aware(pb.mesh, 8);
  auto systems_c = gpart::distribute(pb.sys.a, pb.sys.b, pc);
  std::size_t local_total_c = 0;
  for (const auto& ls : systems_c)
    local_total_c += ls.local_contact_groups(pb.mesh.contact_groups).size();
  EXPECT_EQ(local_total_c, pb.mesh.contact_groups.size());
}

// ---------------------------------------------------------------------------
// Distributed solver
// ---------------------------------------------------------------------------

TEST(DistSolver, MatchesSerialSolution) {
  Problem pb(1e4);
  // serial reference
  gp::BIC0 prec(pb.sys.a);
  std::vector<double> x_ref(pb.sys.a.ndof(), 0.0);
  auto sres = geofem::solver::pcg(pb.sys.a, prec, pb.sys.b, x_ref,
                                  {.tolerance = 1e-10, .max_iterations = 20000});
  ASSERT_TRUE(sres.converged());

  auto p = gpart::rcb_contact_aware(pb.mesh, 4);
  auto systems = gpart::distribute(pb.sys.a, pb.sys.b, p);
  std::vector<double> x;
  gd::DistOptions dopt;
  dopt.cg.tolerance = 1e-10;
  dopt.cg.max_iterations = 20000;
  auto dres = gd::solve_distributed(systems, bic0_factory(), dopt, &x);
  ASSERT_TRUE(dres.converged());
  double err = 0.0, norm = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    err = std::max(err, std::abs(x[i] - x_ref[i]));
    norm = std::max(norm, std::abs(x_ref[i]));
  }
  EXPECT_LT(err, 1e-6 * norm);
}

TEST(DistSolver, OneDomainMatchesSerialIterations) {
  Problem pb(1e2);
  gp::BIC0 prec(pb.sys.a);
  std::vector<double> x_ref(pb.sys.a.ndof(), 0.0);
  auto sres = geofem::solver::pcg(pb.sys.a, prec, pb.sys.b, x_ref);

  gpart::Partition p;
  p.num_domains = 1;
  p.domain_of.assign(static_cast<std::size_t>(pb.mesh.num_nodes()), 0);
  auto systems = gpart::distribute(pb.sys.a, pb.sys.b, p);
  auto dres = gd::solve_distributed(systems, bic0_factory());
  EXPECT_EQ(dres.iterations, sres.iterations);
}

TEST(DistSolver, IterationsGrowWithDomains) {
  Problem pb(1e2, {4, 4, 3, 4, 4});
  int it1 = 0, it8 = 0;
  {
    gpart::Partition p;
    p.num_domains = 1;
    p.domain_of.assign(static_cast<std::size_t>(pb.mesh.num_nodes()), 0);
    auto systems = gpart::distribute(pb.sys.a, pb.sys.b, p);
    it1 = gd::solve_distributed(systems, bic0_factory()).iterations;
  }
  {
    auto p = gpart::rcb_contact_aware(pb.mesh, 8);
    auto systems = gpart::distribute(pb.sys.a, pb.sys.b, p);
    it8 = gd::solve_distributed(systems, bic0_factory()).iterations;
  }
  EXPECT_GT(it8, it1);          // localization costs iterations...
  EXPECT_LT(it8, 3 * it1 + 10); // ...but mildly (paper Table 1: +30%)
}

TEST(DistSolver, ContactAwarePartitioningRestoresConvergence) {
  // Table 3: with contact groups cut, localized SB-BIC(0) degrades badly;
  // the contact-aware repartitioning recovers it.
  Problem pb(1e6);
  auto factory = [&pb](const gpart::LocalSystem& ls, const geofem::sparse::BlockCSR& aii, geofem::precond::Precision) {
    auto groups = ls.local_contact_groups(pb.mesh.contact_groups);
    auto sn = gc::build_supernodes(aii.n, groups);
    return std::make_unique<gp::SBBIC0>(aii, std::move(sn));
  };

  auto p_bad = gpart::by_node_blocks(pb.mesh.num_nodes(), 8);
  auto p_good = gpart::rcb_contact_aware(pb.mesh, 8);
  auto sys_bad = gpart::distribute(pb.sys.a, pb.sys.b, p_bad);
  auto sys_good = gpart::distribute(pb.sys.a, pb.sys.b, p_good);
  gd::DistOptions opt;
  opt.cg.max_iterations = 4000;
  const int it_bad = gd::solve_distributed(sys_bad, factory, opt).iterations;
  const int it_good = gd::solve_distributed(sys_good, factory, opt).iterations;
  EXPECT_GT(it_bad, 2 * it_good) << it_bad << " vs " << it_good;
}

TEST(DistSolver, TracksTrafficAndFlops) {
  Problem pb(1e2);
  auto p = gpart::rcb_contact_aware(pb.mesh, 4);
  auto systems = gpart::distribute(pb.sys.a, pb.sys.b, p);
  auto res = gd::solve_distributed(systems, bic0_factory());
  ASSERT_EQ(res.traffic_per_rank.size(), 4u);
  for (const auto& t : res.traffic_per_rank) {
    EXPECT_GT(t.messages_sent, 0u);
    EXPECT_GT(t.allreduces, 0u);
  }
  EXPECT_GT(res.total_flops().spmv, 0u);
  EXPECT_GT(res.total_flops().precond, 0u);
}
