// Utility-module behaviour and failure-injection tests: the GEOFEM_CHECK
// contract violations must throw (std::logic_error), never corrupt state.

#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <thread>

#include "contact/penalty.hpp"
#include "fem/assembly.hpp"
#include "mesh/hex_mesh.hpp"
#include "mesh/simple_block.hpp"
#include "part/local_system.hpp"
#include "part/partition.hpp"
#include "precond/diagonal.hpp"
#include "precond/djds_bic.hpp"
#include "solver/cg.hpp"
#include "sparse/block_csr.hpp"
#include "util/loop_stats.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace gu = geofem::util;
namespace gs = geofem::sparse;
namespace gm = geofem::mesh;

TEST(LoopStats, AverageAndMerge) {
  gu::LoopStats a, b;
  a.record(10, 2);
  a.record(20);
  EXPECT_EQ(a.count(), 3);
  EXPECT_DOUBLE_EQ(a.average(), 40.0 / 3.0);
  EXPECT_EQ(a.max_length(), 20);
  EXPECT_EQ(a.min_length(), 10);
  b.record(100);
  b.merge(a);
  EXPECT_EQ(b.count(), 4);
  EXPECT_EQ(b.total_length(), 140);
  // zero/negative records ignored
  b.record(0);
  b.record(-5);
  EXPECT_EQ(b.count(), 4);
}

TEST(Rng, DeterministicAndBounded) {
  gu::Rng r1(7), r2(7), r3(8);
  bool all_equal = true, any_diff_seed = false;
  for (int i = 0; i < 100; ++i) {
    const double a = r1.next_double(), b = r2.next_double(), c = r3.next_double();
    all_equal &= (a == b);
    any_diff_seed |= (a != c);
    EXPECT_GE(a, 0.0);
    EXPECT_LT(a, 1.0);
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff_seed);
  for (int i = 0; i < 50; ++i) EXPECT_LT(r1.next_below(13), 13u);
}

TEST(Table, FormatsNumbers) {
  EXPECT_EQ(gu::Table::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(gu::Table::sci(12345.6, 2), "1.23e+04");
}

TEST(Timer, AccumPausesAndResumes) {
  gu::AccumTimer t;
  EXPECT_DOUBLE_EQ(t.seconds(), 0.0);
  t.resume();
  t.pause();
  const double s1 = t.seconds();
  EXPECT_GE(s1, 0.0);
  // paused: does not advance
  EXPECT_DOUBLE_EQ(t.seconds(), s1);
  t.reset();
  EXPECT_DOUBLE_EQ(t.seconds(), 0.0);
}

TEST(Timer, ResumeWhileRunningKeepsAccumulatedTime) {
  // Regression: resume() on a running timer used to restart the stopwatch,
  // silently dropping everything accumulated since the first resume().
  gu::AccumTimer t;
  t.resume();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  t.resume();  // must be a no-op, not a restart
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  t.pause();
  EXPECT_GE(t.seconds(), 0.005);
}

// ---------------------------------------------------------------------------
// Failure injection
// ---------------------------------------------------------------------------

TEST(Failures, BuilderRejectsOutOfRangePattern) {
  gs::BlockCSRBuilder b(3);
  EXPECT_THROW(b.add_pattern(0, 5), std::logic_error);
  EXPECT_THROW(b.add_pattern(-1, 0), std::logic_error);
}

TEST(Failures, BuilderRejectsValueOutsidePattern) {
  gs::BlockCSRBuilder b(3);
  b.finalize_pattern();
  double blk[9] = {};
  EXPECT_THROW(b.add_block(0, 2, blk), std::logic_error);
  EXPECT_THROW(b.finalize_pattern(), std::logic_error);  // double finalize
}

TEST(Failures, SpmvRejectsWrongSizes) {
  gs::BlockCSRBuilder b(2);
  b.finalize_pattern();
  auto m = b.take();
  std::vector<double> x(5), y(6);
  EXPECT_THROW(m.spmv(x, y), std::logic_error);
}

TEST(Failures, PenaltyNeedsPattern) {
  gs::BlockCSRBuilder b(4);
  b.finalize_pattern();
  auto m = b.take();  // diagonal-only pattern
  EXPECT_THROW(geofem::contact::add_penalty(m, {{0, 1}}, 10.0), std::logic_error);
  EXPECT_THROW(geofem::contact::add_penalty(m, {{0}}, -1.0), std::logic_error);
}

TEST(Failures, NodeInTwoGroupsRejected) {
  EXPECT_THROW(geofem::contact::build_supernodes(4, {{0, 1}, {1, 2}}), std::logic_error);
  EXPECT_THROW(geofem::contact::build_supernodes(2, {{0, 5}}), std::logic_error);
}

TEST(Failures, MeshValidateCatchesNonCoincidentGroup) {
  auto m = gm::unit_cube(2, 2, 2);
  m.contact_groups.push_back({0, 1});  // different coordinates
  EXPECT_THROW(m.validate(), std::logic_error);
}

TEST(Failures, PartitionRejectsTooManyDomains) {
  EXPECT_THROW(geofem::part::by_node_blocks(3, 5), std::logic_error);
}

TEST(Failures, DistributeRejectsMismatchedPartition) {
  gm::HexMesh m = gm::simple_block({2, 2, 2, 2, 2});
  auto sys = geofem::fem::assemble_elasticity(m, {{1.0, 0.3}});
  geofem::part::Partition p;
  p.num_domains = 2;
  p.domain_of.assign(3, 0);  // wrong size
  EXPECT_THROW(geofem::part::distribute(sys.a, sys.b, p), std::logic_error);
}

TEST(Failures, CGRejectsZeroRhs) {
  gs::BlockCSRBuilder b(2);
  b.finalize_pattern();
  auto m = b.take();
  double one[9] = {1, 0, 0, 0, 1, 0, 0, 0, 1};
  for (int i = 0; i < 2; ++i) {
    const int e = m.diag_entry(i);
    for (int k = 0; k < 9; ++k) m.block(e)[k] = one[k];
  }
  geofem::precond::DiagonalScaling prec(m);
  std::vector<double> rhs(6, 0.0), x(6, 0.0);
  EXPECT_THROW(geofem::solver::pcg(m, prec, rhs, x), std::logic_error);
}

// ---------------------------------------------------------------------------
// OwnedDJDSBIC end-to-end
// ---------------------------------------------------------------------------

TEST(OwnedDJDSBIC, SolvesAndExposesStats) {
  gm::HexMesh m = gm::simple_block({3, 3, 2, 3, 3});
  auto sys = geofem::fem::assemble_elasticity(m, {{1.0, 0.3}});
  geofem::contact::add_penalty(sys.a, m.contact_groups, 1e6);
  geofem::fem::BoundaryConditions bc;
  bc.fix_nodes(m.nodes_where([](double, double, double z) { return z == 0.0; }), -1);
  bc.surface_load(m, [](double, double, double z) { return z > 4.9; }, 2, -1.0);
  geofem::fem::apply_boundary_conditions(sys, bc);

  auto sn = geofem::contact::build_supernodes(sys.a.n, m.contact_groups);
  geofem::precond::OwnedDJDSBIC prec(sys.a, std::move(sn), 10, 8);
  EXPECT_GT(prec.inner().jagged_loops().count(), 0);
  EXPECT_GT(prec.inner().batch_loops().count(), 0);
  EXPECT_GT(prec.inner().block_solve_flops(), 0.0);

  // works directly in the ORIGINAL ordering
  std::vector<double> x(sys.a.ndof(), 0.0);
  auto res = geofem::solver::pcg(sys.a, prec, sys.b, x, {.max_iterations = 2000});
  EXPECT_TRUE(res.converged());
}
