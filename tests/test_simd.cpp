// SIMD kernel layer (DESIGN.md 5f): the determinism contract across kernel
// tiers. Within one build configuration results are bit-identical across
// thread counts (the hybrid guarantee, re-asserted here so it is checked in
// the avx2 CI build too); across tiers in the same binary (active vs the
// de-vectorized scalar reference under simd::IsaScope) kernel outputs agree
// to <= 1e-13 relative — FMA contraction and fixed-tree horizontal sums round
// differently, so the cross-tier check is tolerance-based, not bitwise.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "contact/penalty.hpp"
#include "core/geofem.hpp"
#include "fem/assembly.hpp"
#include "mesh/simple_block.hpp"
#include "par/par.hpp"
#include "precond/bic.hpp"
#include "precond/diagonal.hpp"
#include "precond/djds_bic.hpp"
#include "precond/sb_bic0.hpp"
#include "reorder/coloring.hpp"
#include "reorder/djds.hpp"
#include "simd/block3.hpp"
#include "simd/jagged.hpp"
#include "simd/lu3.hpp"
#include "simd/simd.hpp"
#include "sparse/dense.hpp"
#include "sparse/vector_ops.hpp"

namespace gc = geofem::contact;
namespace gcore = geofem::core;
namespace gf = geofem::fem;
namespace gm = geofem::mesh;
namespace gpar = geofem::par;
namespace gp = geofem::precond;
namespace gr = geofem::reorder;
namespace simd = geofem::simd;
namespace sp = geofem::sparse;

namespace {

constexpr double kTol = 1e-13;

/// Deterministic pseudo-random doubles in [-1, 1) (no <random> so the
/// sequence is identical on every platform).
struct Lcg {
  std::uint64_t s = 0x9e3779b97f4a7c15ull;
  double next() {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>(static_cast<std::int64_t>(s >> 11)) / 4503599627370496.0;
  }
};

double rel_inf_diff(const std::vector<double>& a, const std::vector<double>& b) {
  double scale = 1.0, diff = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    scale = std::max(scale, std::abs(a[i]));
    diff = std::max(diff, std::abs(a[i] - b[i]));
  }
  return diff / scale;
}

struct Problem {
  gm::HexMesh mesh;
  gf::System sys;
  gc::Supernodes sn;

  Problem() {
    mesh = gm::simple_block({4, 4, 3, 4, 4});
    sys = gf::assemble_elasticity(mesh, {{1.0, 0.3}});
    gc::add_penalty(sys.a, mesh.contact_groups, 1e6);
    gf::BoundaryConditions bc;
    bc.fix_nodes(mesh.nodes_where([](double, double, double z) { return z == 0.0; }), -1);
    const double zmax = mesh.bounding_box().hi[2];
    bc.surface_load(
        mesh, [&](double, double, double z) { return std::abs(z - zmax) < 1e-12; }, 2, -1.0);
    gf::apply_boundary_conditions(sys, bc);
    sn = gc::build_supernodes(mesh.num_nodes(), mesh.contact_groups);
  }
};

const Problem& problem() {
  static Problem p;
  return p;
}

}  // namespace

// ---------------------------------------------------------------------------
// Infrastructure: aligned storage and the IsaScope dispatch
// ---------------------------------------------------------------------------

TEST(SimdInfra, AlignedVectorIsCacheLineAligned) {
  for (std::size_t n : {1u, 7u, 64u, 1000u}) {
    simd::aligned_vector<double> v(n, 1.0);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % 64, 0u) << "n=" << n;
    v.resize(3 * n + 1);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % 64, 0u) << "resized n=" << n;
  }
  simd::aligned_vector<std::int32_t> idx(37, 0);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(idx.data()) % 64, 0u);
}

TEST(SimdInfra, ActiveDefaultsToCompiledCeiling) {
  EXPECT_EQ(simd::active(), simd::compiled_isa());
  EXPECT_GE(simd::lane_width(), 1);
}

TEST(SimdInfra, IsaScopeLowersClampsAndRestores) {
  const simd::Isa ceiling = simd::compiled_isa();
  {
    simd::IsaScope scalar(simd::Isa::kScalar);
    EXPECT_EQ(simd::active(), simd::Isa::kScalar);
    EXPECT_EQ(simd::lane_width(), 1);
    {
      // Requests above the compiled ceiling are clamped, never exceeded.
      simd::IsaScope up(simd::Isa::kAvx2);
      EXPECT_LE(static_cast<int>(simd::active()), static_cast<int>(ceiling));
    }
    EXPECT_EQ(simd::active(), simd::Isa::kScalar);
  }
  EXPECT_EQ(simd::active(), ceiling);
}

// ---------------------------------------------------------------------------
// PackedJagged: structure mirror and padding accounting
// ---------------------------------------------------------------------------

TEST(PackedJagged, PadsTailsToLaneWidthWithZeroBlocks) {
  // Two diagonals, lengths 5 and 2 -> groups of 2 and 1; padding lanes must
  // carry item3 == 0 (gathers x[0..2], always mapped) and zero coefficients.
  const std::vector<int> jd_ptr{0, 5, 7};
  const std::vector<int> item{3, 1, 4, 1, 5, 2, 6};
  std::vector<double> val(9 * 7);
  Lcg rng;
  for (double& v : val) v = rng.next();

  simd::PackedJagged p;
  simd::pack_jagged(jd_ptr, item, val.data(), p);
  ASSERT_TRUE(p.built());
  ASSERT_EQ(p.grp_ptr.size(), 3u);
  EXPECT_EQ(p.grp_ptr[1] - p.grp_ptr[0], 2);  // ceil(5/4)
  EXPECT_EQ(p.grp_ptr[2] - p.grp_ptr[1], 1);  // ceil(2/4)
  EXPECT_EQ(p.len[0], 5);
  EXPECT_EQ(p.len[1], 2);
  // Group 1 covers rows 4..7 of diagonal 0; lanes 1..3 are padding.
  for (int l = 1; l < 4; ++l) {
    EXPECT_EQ(p.item3[4 * 1 + l], 0);
    for (int m = 0; m < 9; ++m) EXPECT_EQ(p.val[36 * 1 + 4 * m + l], 0.0);
  }
  // Real lanes round-trip the block coefficients lane-transposed.
  EXPECT_EQ(p.item3[0], 3 * item[0]);
  for (int m = 0; m < 9; ++m) EXPECT_EQ(p.val[4 * m + 0], val[static_cast<std::size_t>(m)]);
}

#if GEOFEM_SIMD_HAS_AVX2

// ---------------------------------------------------------------------------
// AVX2 sweeps vs the de-vectorized scalar reference, every ragged tail
// ---------------------------------------------------------------------------

namespace {

template <simd::Mode M>
void check_sweep_tail(int tail) {
  // One full diagonal (9 rows) plus one of length `tail` (1..8 covers every
  // mask path: tail < lane width and lane width <= tail < 2 * lane width).
  const int rows = std::max(9, tail);
  const std::vector<int> jd_ptr{0, rows, rows + tail};
  const int n = 16;
  std::vector<int> item;
  Lcg rng;
  for (int t = 0; t < rows + tail; ++t)
    item.push_back(static_cast<int>(std::abs(rng.next()) * (n - 1)));
  std::vector<double> val(9 * item.size());
  for (double& v : val) v = rng.next();
  std::vector<double> x(3 * n);
  for (double& v : x) v = rng.next();

  std::vector<double> y_ref(3 * static_cast<std::size_t>(rows), 0.5);
  std::vector<double> y_simd = y_ref;
  simd::sweep_scalar<M>(jd_ptr, item, val.data(), x.data(), y_ref.data());

  simd::PackedJagged p;
  simd::pack_jagged(jd_ptr, item, val.data(), p);
  simd::sweep_avx2<M>(p, x.data(), y_simd.data());

  EXPECT_LE(rel_inf_diff(y_ref, y_simd), kTol) << "tail=" << tail;
}

}  // namespace

TEST(SweepAvx2, MatchesScalarForEveryRaggedTail) {
  for (int tail = 1; tail <= 2 * simd::PackedJagged::kLanes; ++tail) {
    check_sweep_tail<simd::Mode::kAssign>(tail);
    check_sweep_tail<simd::Mode::kAdd>(tail);
    check_sweep_tail<simd::Mode::kSub>(tail);
  }
}

TEST(SweepAvx2, PackedBlockApplyMatchesScalar) {
  // pack_blocks + kAssign is the block-Jacobi / DJDS-diagonal apply path.
  for (int n : {1, 3, 4, 5, 11}) {
    Lcg rng;
    std::vector<double> blocks(9 * static_cast<std::size_t>(n));
    for (double& v : blocks) v = rng.next();
    std::vector<double> x(3 * static_cast<std::size_t>(n));
    for (double& v : x) v = rng.next();

    std::vector<double> ref(3 * static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) sp::b3_apply(&blocks[9 * static_cast<std::size_t>(i)],
                                             &x[3 * static_cast<std::size_t>(i)],
                                             &ref[3 * static_cast<std::size_t>(i)]);
    simd::PackedJagged p;
    simd::pack_blocks(blocks.data(), n, p);
    std::vector<double> out(ref.size());
    simd::sweep_avx2<simd::Mode::kAssign>(p, x.data(), out.data());
    EXPECT_LE(rel_inf_diff(ref, out), kTol) << "n=" << n;
  }
}

// ---------------------------------------------------------------------------
// PackedLU3: lane-batched 3x3 pivoted solves vs the generic dense LU
// ---------------------------------------------------------------------------

TEST(PackedLU3Avx2, BatchedSolveMatchesDenseLU) {
  constexpr int kN = 11;  // two full groups + a ragged tail of 3
  Lcg rng;
  std::vector<sp::DenseLU> lus(static_cast<std::size_t>(kN));
  for (int u = 0; u < kN; ++u) {
    double a[9];
    for (double& v : a) v = rng.next();
    // Rotate the dominant row of column 0 so every pivot path (piv0 = 0, 1,
    // 2, hence every blend-mask combination) is exercised across the batch.
    a[3 * (u % 3)] += 3.0;
    ASSERT_TRUE(lus[static_cast<std::size_t>(u)].factor(a, 3)) << "unit " << u;
  }
  simd::PackedLU3 pack;
  for (int g = 0; g < kN; g += simd::PackedLU3::kLanes) {
    const int cnt = std::min(simd::PackedLU3::kLanes, kN - g);
    const sp::DenseLU* ptr[simd::PackedLU3::kLanes] = {};
    for (int l = 0; l < cnt; ++l) ptr[l] = &lus[static_cast<std::size_t>(g + l)];
    simd::pack_lu3_group(pack, ptr, cnt, g);
  }
  ASSERT_EQ(pack.start.size(), 3u);
  EXPECT_EQ(pack.cnt[2], 3);

  // One sentinel row past the packed range: the masked tail store of the
  // ragged group must leave it untouched.
  std::vector<double> y(3 * (kN + 1));
  for (double& v : y) v = rng.next();
  std::vector<double> ref = y;
  for (int u = 0; u < kN; ++u) lus[static_cast<std::size_t>(u)].solve(ref.data() + 3 * u);
  std::vector<double> out = y;
  simd::solve_lu3_avx2(pack, out.data());
  EXPECT_LE(rel_inf_diff(ref, out), kTol);
  for (int c = 0; c < 3; ++c) EXPECT_EQ(out[3 * kN + c], y[3 * kN + c]);

  // Subtract variant (backward substitution): z -= A^-1 w, w left as-is.
  std::vector<double> w(3 * (kN + 1)), z(3 * (kN + 1));
  for (double& v : w) v = rng.next();
  for (double& v : z) v = rng.next();
  std::vector<double> zref = z, wtmp = w;
  for (int u = 0; u < kN; ++u) {
    lus[static_cast<std::size_t>(u)].solve(wtmp.data() + 3 * u);
    for (int c = 0; c < 3; ++c) zref[static_cast<std::size_t>(3 * u + c)] -= wtmp[static_cast<std::size_t>(3 * u + c)];
  }
  std::vector<double> zout = z;
  simd::solve_lu3_sub_avx2(pack, w.data(), zout.data());
  EXPECT_LE(rel_inf_diff(zref, zout), kTol);
  for (int c = 0; c < 3; ++c) EXPECT_EQ(zout[3 * kN + c], z[3 * kN + c]);
}

#endif  // GEOFEM_SIMD_HAS_AVX2

// ---------------------------------------------------------------------------
// Whole-kernel equivalence: active tier vs scalar reference, same binary
// ---------------------------------------------------------------------------

namespace {

/// Run `call` under the active tier and under IsaScope(kScalar), return the
/// relative inf-norm difference of the produced vectors.
template <class Call>
double tier_diff(std::size_t ndof, Call&& call) {
  std::vector<double> active(ndof), scalar(ndof);
  call(active);
  {
    simd::IsaScope sc(simd::Isa::kScalar);
    call(scalar);
  }
  return rel_inf_diff(scalar, active);
}

}  // namespace

TEST(TierEquivalence, SpmvCsr) {
  const auto& pb = problem();
  std::vector<double> x(pb.sys.a.ndof());
  Lcg rng;
  for (double& v : x) v = rng.next();
  EXPECT_LE(tier_diff(x.size(), [&](std::vector<double>& y) { pb.sys.a.spmv(x, y); }), kTol);
}

TEST(TierEquivalence, SpmvDjds) {
  const auto& pb = problem();
  const auto g = sp::graph_of(pb.sys.a);
  const auto col = gr::lift_coloring(
      gr::multicolor(gr::quotient_graph(g, pb.sn.node_to_super, pb.sn.count()), 10),
      pb.sn.node_to_super, pb.sys.a.n);
  const gr::DJDSMatrix dj(pb.sys.a, col, &pb.sn, {});
  std::vector<double> x(pb.sys.a.ndof());
  Lcg rng;
  for (double& v : x) v = rng.next();
  EXPECT_LE(tier_diff(x.size(), [&](std::vector<double>& y) { dj.spmv(x, y); }), kTol);
}

namespace {

template <class Prec>
void check_precond_tiers(const Prec& prec) {
  const auto& pb = problem();
  std::vector<double> r(pb.sys.a.ndof());
  Lcg rng;
  for (double& v : r) v = rng.next();
  EXPECT_LE(tier_diff(r.size(),
                      [&](std::vector<double>& z) { prec.apply(r, z, nullptr, nullptr); }),
            kTol)
      << prec.name();
}

}  // namespace

TEST(TierEquivalence, Bic0Apply) { check_precond_tiers(gp::BIC0(problem().sys.a)); }

TEST(TierEquivalence, Bic1Apply) { check_precond_tiers(gp::BlockILUk(problem().sys.a, 1)); }

TEST(TierEquivalence, SbBic0Apply) {
  check_precond_tiers(gp::SBBIC0(problem().sys.a, problem().sn));
}

TEST(TierEquivalence, BlockDiagonalApply) {
  check_precond_tiers(gp::BlockDiagonal(problem().sys.a));
}

TEST(TierEquivalence, PdjdsBicApply) {
  // OwnedDJDSBIC presents the original ordering, so this exercises the whole
  // PDJDS pipeline: permute, jagged forward/backward sweeps, dense LU solves.
  check_precond_tiers(gp::OwnedDJDSBIC(problem().sys.a, problem().sn, 10, 2));
}

// ---------------------------------------------------------------------------
// fp32-stored kernels: cross-tier and cross-precision tolerance bands
// ---------------------------------------------------------------------------

namespace {

/// fp32-stored factors: the sweeps either stage in float (BlockDiagonal,
/// DJDS) or widen float values into fp64 accumulators (CSR paths), so the
/// cross-tier agreement is bounded by float rounding, not fp64 rounding —
/// hence a much wider band than kTol.
constexpr double kTol32 = 1e-4;

template <class Prec>
void check_precond_tiers32(const Prec& prec) {
  const auto& pb = problem();
  std::vector<double> r(pb.sys.a.ndof());
  Lcg rng;
  for (double& v : r) v = rng.next();
  EXPECT_LE(tier_diff(r.size(),
                      [&](std::vector<double>& z) { prec.apply(r, z, nullptr, nullptr); }),
            kTol32)
      << prec.name();
}

/// fp32 vs fp64 apply of the same preconditioner (active tier): the fp32
/// factors are the narrowed image of the fp64 factorization, so the applies
/// agree to a float-rounding band scaled by the factor conditioning.
template <class Prec, class... Args>
void check_precision_band(double band, Args&&... args) {
  const auto& pb = problem();
  std::vector<double> r(pb.sys.a.ndof());
  Lcg rng;
  for (double& v : r) v = rng.next();
  const Prec p64(args..., gp::Precision::kDouble);
  const Prec p32(args..., gp::Precision::kSingle);
  std::vector<double> z64(r.size()), z32(r.size());
  p64.apply(r, z64, nullptr, nullptr);
  p32.apply(r, z32, nullptr, nullptr);
  EXPECT_LE(rel_inf_diff(z64, z32), band) << p32.name();
  EXPECT_NE(p32.name().find("[fp32]"), std::string::npos);
}

}  // namespace

TEST(TierEquivalence32, Bic0Apply) {
  check_precond_tiers32(gp::BIC0(problem().sys.a, gp::Precision::kSingle));
}

TEST(TierEquivalence32, Bic1Apply) {
  check_precond_tiers32(gp::BlockILUk(problem().sys.a, 1, gp::Precision::kSingle));
}

TEST(TierEquivalence32, SbBic0Apply) {
  check_precond_tiers32(
      gp::SBBIC0(problem().sys.a, problem().sn, /*modified=*/false, gp::Precision::kSingle));
}

TEST(TierEquivalence32, BlockDiagonalApply) {
  check_precond_tiers32(gp::BlockDiagonal(problem().sys.a, gp::Precision::kSingle));
}

TEST(TierEquivalence32, PdjdsBicApply) {
  check_precond_tiers32(gp::OwnedDJDSBIC(problem().sys.a, problem().sn, 10, 2,
                                         /*sort_supernodes=*/true, gp::Precision::kSingle));
}

TEST(PrecisionBand, Fp32ApplyTracksFp64) {
  check_precision_band<gp::BIC0>(5e-3, problem().sys.a);
  check_precision_band<gp::BlockDiagonal>(5e-3, problem().sys.a);
}

TEST(TierEquivalence, DotAndNorm) {
  simd::aligned_vector<double> a(10000), b(a.size());
  Lcg rng;
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.next();
    b[i] = rng.next();
  }
  const double active = sp::dot(a, b);
  double scalar;
  {
    simd::IsaScope sc(simd::Isa::kScalar);
    scalar = sp::dot(a, b);
  }
  EXPECT_LE(std::abs(active - scalar) / std::max(1.0, std::abs(scalar)), kTol);
}

// ---------------------------------------------------------------------------
// Thread-count bit-identity within this build's SIMD configuration
// ---------------------------------------------------------------------------

TEST(SimdHybrid, ResidualHistoryBitIdenticalAcrossTeamSizes) {
  // Same contract test_hybrid.cpp enforces, repeated in this suite so the
  // avx2 CI build re-checks it with the hand-tiled kernels dispatched.
  const auto& pb = problem();
  gcore::SolveConfig cfg;
  cfg.precond = gcore::PrecondKind::kSBBIC0;
  cfg.cg.tolerance = 1e-8;
  cfg.cg.record_residuals = true;
  cfg.use_plan_cache = false;

  cfg.threads = 1;
  const auto base = gcore::solve_system(pb.sys, pb.sn, cfg);
  EXPECT_TRUE(base.converged());
  for (int t : {2, 4}) {
    cfg.threads = t;
    const auto rep = gcore::solve_system(pb.sys, pb.sn, cfg);
    ASSERT_EQ(base.cg.residual_history.size(), rep.cg.residual_history.size()) << t;
    for (std::size_t k = 0; k < base.cg.residual_history.size(); ++k)
      ASSERT_EQ(base.cg.residual_history[k], rep.cg.residual_history[k])
          << "threads=" << t << " residual " << k;
  }
}

TEST(SimdHybrid, DotBitIdenticalAcrossTeamSizes) {
  simd::aligned_vector<double> a(50000), b(a.size());
  Lcg rng;
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.next();
    b[i] = rng.next();
  }
  gpar::TeamScope one(1);
  const double base = sp::dot(a, b);
  for (int t : {2, 3, 8}) {
    gpar::TeamScope team(t);
    ASSERT_EQ(sp::dot(a, b), base) << "threads=" << t;
  }
}
