// Solver-as-a-service suite (ctest label `svc`, also run under the TSan CI
// job): sharded PlanCache under concurrency, RNG streams, admission control,
// priority scheduling, warm-vs-cold bit-identity through the service, and the
// deterministic discrete-event workload generator.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <future>
#include <thread>
#include <vector>

#include "contact/penalty.hpp"
#include "core/geofem.hpp"
#include "fem/assembly.hpp"
#include "mesh/simple_block.hpp"
#include "plan/cache.hpp"
#include "plan/plan.hpp"
#include "svc/service.hpp"
#include "svc/workload.hpp"
#include "util/rng.hpp"

namespace gc = geofem::contact;
namespace gcore = geofem::core;
namespace gf = geofem::fem;
namespace gm = geofem::mesh;
namespace gplan = geofem::plan;
namespace gsvc = geofem::svc;
namespace gutil = geofem::util;

namespace {

struct Problem {
  gm::HexMesh mesh;
  gf::System sys;

  explicit Problem(double lambda = 1e4, gm::SimpleBlockParams bp = {3, 3, 2, 3, 3}) {
    mesh = gm::simple_block(bp);
    sys = gf::assemble_elasticity(mesh, {{1.0, 0.3}});
    gc::add_penalty(sys.a, mesh.contact_groups, lambda);
    gf::BoundaryConditions bc = make_bc(mesh);
    gf::apply_boundary_conditions(sys, bc);
  }

  static gf::BoundaryConditions make_bc(const gm::HexMesh& m) {
    gf::BoundaryConditions bc;
    bc.fix_nodes(m.nodes_where([](double, double, double z) { return z == 0.0; }), -1);
    const double zmax = m.bounding_box().hi[2];
    bc.surface_load(
        m, [&](double, double, double z) { return std::abs(z - zmax) < 1e-12; }, 2, -1.0);
    return bc;
  }
};

gsvc::ServiceOptions small_service(int workers) {
  gsvc::ServiceOptions opt;
  opt.workers = workers;
  opt.queue_capacity = 256;
  opt.solve.precond = gcore::PrecondKind::kSBBIC0;
  opt.solve.cg.tolerance = 1e-8;
  return opt;
}

}  // namespace

// ---------------------------------------------------------------------------
// RNG streams (workload determinism depends on these)
// ---------------------------------------------------------------------------

TEST(SvcRng, JumpStreamsAreDisjointAndDeterministic) {
  gutil::Rng base(7);
  gutil::Rng s1 = base.stream(1);
  gutil::Rng s2 = base.stream(2);
  gutil::Rng s1b = gutil::Rng(7).stream(1);
  int collisions = 0;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t a = s1.next_u64();
    const std::uint64_t b = s2.next_u64();
    EXPECT_EQ(a, s1b.next_u64());  // same seed + stream index -> same draws
    collisions += a == b;
  }
  EXPECT_EQ(collisions, 0);
}

TEST(SvcRng, JumpMatchesSequentialAdvance) {
  // jump() must land inside the same sequence: draws after a jump never
  // repeat draws before it (probabilistically certain for 64-bit outputs).
  gutil::Rng a(123);
  gutil::Rng b = a;  // copy, then advance one via jump
  b.jump();
  for (int i = 0; i < 100; ++i) EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(SvcRng, SplitDecorrelatesFromParent) {
  gutil::Rng parent(99);
  gutil::Rng child = parent.split();
  gutil::Rng parent2(99);
  gutil::Rng child2 = parent2.split();
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t c = child.next_u64();
    EXPECT_EQ(c, child2.next_u64());        // deterministic
    EXPECT_NE(c, parent.next_u64());        // decorrelated
  }
}

TEST(SvcRng, ExponentialHasRequestedMean) {
  gutil::Rng rng(5);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.next_exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

// ---------------------------------------------------------------------------
// Sharded PlanCache under concurrency
// ---------------------------------------------------------------------------

TEST(SvcPlanCache, ShardedCapacityAndStatsTotals) {
  gplan::PlanCache cache(8, 4);
  EXPECT_EQ(cache.shard_count(), 4u);
  EXPECT_EQ(cache.capacity(), 8u);  // 2 per shard
  gplan::PlanCache one(3, 1);
  EXPECT_EQ(one.shard_count(), 1u);
  EXPECT_EQ(one.capacity(), 3u);
}

TEST(SvcPlanCache, ConcurrentGetInsertEvictStaysConsistent) {
  Problem pb;
  const gc::Supernodes sn = gc::build_supernodes(pb.sys.a.n, pb.mesh.contact_groups);
  // 7 distinct fingerprints (one per preconditioner kind) against a capacity
  // of 4 over 2 shards: steady-state evictions while 8 threads hammer get().
  const gplan::PrecondKind kinds[] = {
      gplan::PrecondKind::kDiagonal, gplan::PrecondKind::kScalarIC0,
      gplan::PrecondKind::kBIC0,     gplan::PrecondKind::kBIC1,
      gplan::PrecondKind::kBIC2,     gplan::PrecondKind::kSBBIC0,
      gplan::PrecondKind::kBlockDiagonal};
  gplan::PlanCache cache(4, 2);
  constexpr int kThreads = 8;
  constexpr int kIters = 40;
  std::atomic<int> bad{0};
  std::atomic<std::uint64_t> observed_hits{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      gutil::Rng rng = gutil::Rng(2024).stream(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kIters; ++i) {
        gplan::PlanConfig cfg;
        cfg.precond = kinds[rng.next_below(7)];
        bool hit = false;
        auto plan = cache.get(pb.sys.a, sn, cfg, &hit);
        if (!plan || plan->config().precond != cfg.precond) ++bad;
        if (hit) ++observed_hits;
        // interleave stats() readers with the inserts: totals must stay
        // self-consistent at any moment (hits + misses == lookups seen)
        const gplan::CacheStats s = cache.stats();
        if (s.entries > cache.capacity()) ++bad;
      }
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(bad, 0);
  const gplan::CacheStats s = cache.stats();
  EXPECT_EQ(s.hits + s.misses, static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_GE(s.hits, observed_hits.load());  // every per-call hit was counted
  EXPECT_LE(s.entries, cache.capacity());
  EXPECT_GT(s.evictions, 0u);
  // shard stats partition the totals
  gplan::CacheStats sum;
  for (const gplan::CacheStats& sh : cache.shard_stats()) sum += sh;
  EXPECT_EQ(sum.hits, s.hits);
  EXPECT_EQ(sum.misses, s.misses);
  EXPECT_EQ(sum.entries, s.entries);
}

TEST(SvcPlanCache, PublishExportsGauges) {
  Problem pb;
  const gc::Supernodes sn = gc::build_supernodes(pb.sys.a.n, pb.mesh.contact_groups);
  gplan::PlanCache cache(4, 2);
  gplan::PlanConfig cfg;
  cache.get(pb.sys.a, sn, cfg);
  cache.get(pb.sys.a, sn, cfg);
  geofem::obs::Registry reg;
  cache.publish(reg);
  const auto snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(*snap.gauge("plan.cache.hits"), 1.0);
  EXPECT_DOUBLE_EQ(*snap.gauge("plan.cache.misses"), 1.0);
  EXPECT_DOUBLE_EQ(*snap.gauge("plan.cache.entries"), 1.0);
  EXPECT_DOUBLE_EQ(*snap.gauge("plan.cache.shards"), 2.0);
  ASSERT_NE(snap.gauge("plan.cache.shard.0.entries"), nullptr);
  ASSERT_NE(snap.gauge("plan.cache.shard.1.entries"), nullptr);
}

// ---------------------------------------------------------------------------
// SolverService
// ---------------------------------------------------------------------------

TEST(SvcService, WarmSolveBitIdenticalToColdAndToDirect) {
  const gm::HexMesh mesh = gm::simple_block({3, 3, 2, 3, 3});
  gsvc::SolverService svc(small_service(2));
  const gsvc::ModelId model = svc.register_model(mesh, {{1.0, 0.3}}, Problem::make_bc(mesh));

  gsvc::SolveRequest req;
  req.model = model;
  req.priority = gsvc::Priority::kInteractive;
  req.lambda = 1e4;
  gsvc::SolveResponse cold = svc.submit(req).get();
  gsvc::SolveResponse warm = svc.submit(req).get();
  ASSERT_TRUE(ok(cold.status));
  ASSERT_TRUE(ok(warm.status));
  EXPECT_FALSE(cold.report.plan_reused);
  EXPECT_TRUE(warm.report.plan_reused);
  EXPECT_EQ(cold.report.cg.iterations, warm.report.cg.iterations);
  ASSERT_EQ(cold.report.solution.size(), warm.report.solution.size());
  for (std::size_t i = 0; i < cold.report.solution.size(); ++i)
    ASSERT_EQ(cold.report.solution[i], warm.report.solution[i]) << "dof " << i;

  // ... and both match the library called directly (same config).
  Problem pb(1e4);
  gcore::SolveConfig cfg = small_service(1).solve;
  cfg.use_plan_cache = false;
  const gcore::SolveReport direct =
      gcore::solve_system(pb.sys, gc::build_supernodes(pb.sys.a.n, pb.mesh.contact_groups), cfg);
  ASSERT_EQ(direct.solution.size(), cold.report.solution.size());
  for (std::size_t i = 0; i < direct.solution.size(); ++i)
    ASSERT_EQ(direct.solution[i], cold.report.solution[i]) << "dof " << i;
}

TEST(SvcService, ContactStateDeltaStaysWarmButChangesSolution) {
  const gm::HexMesh mesh = gm::simple_block({3, 3, 2, 3, 3});
  gsvc::SolverService svc(small_service(1));
  const gsvc::ModelId model = svc.register_model(mesh, {{1.0, 0.3}}, Problem::make_bc(mesh));

  gsvc::SolveRequest full;
  full.model = model;
  full.lambda = 1e6;
  const gsvc::SolveResponse base = svc.submit(full).get();

  gsvc::SolveRequest masked = full;
  masked.active_groups.assign(mesh.contact_groups.size(), 1);
  masked.active_groups[0] = 0;  // release one contact group
  const gsvc::SolveResponse released = svc.submit(masked).get();
  ASSERT_TRUE(ok(base.status));
  ASSERT_TRUE(ok(released.status));
  // dropping a group's penalty only changes values, so the plan stays warm
  EXPECT_TRUE(released.report.plan_reused);
  double diff = 0.0;
  for (std::size_t i = 0; i < base.report.solution.size(); ++i)
    diff = std::max(diff, std::abs(base.report.solution[i] - released.report.solution[i]));
  EXPECT_GT(diff, 0.0);
}

TEST(SvcService, LoadScaleScalesSolution) {
  const gm::HexMesh mesh = gm::simple_block({3, 3, 2, 3, 3});
  gsvc::SolverService svc(small_service(1));
  const gsvc::ModelId model = svc.register_model(mesh, {{1.0, 0.3}}, Problem::make_bc(mesh));
  gsvc::SolveRequest req;
  req.model = model;
  req.lambda = 1e4;
  const gsvc::SolveResponse one = svc.submit(req).get();
  req.load_scale = 2.0;
  const gsvc::SolveResponse two = svc.submit(req).get();
  ASSERT_TRUE(ok(one.status));
  ASSERT_TRUE(ok(two.status));
  // linear elasticity: doubling the load doubles the displacement (up to CG
  // tolerance; both solves run the same warm plan)
  double max_rel = 0.0;
  for (std::size_t i = 0; i < one.report.solution.size(); ++i) {
    const double a = one.report.solution[i], b = two.report.solution[i];
    if (std::abs(a) > 1e-9) max_rel = std::max(max_rel, std::abs(b / a - 2.0));
  }
  EXPECT_LT(max_rel, 1e-5);
}

TEST(SvcService, BackpressureRejectsAndLosesNothing) {
  const gm::HexMesh mesh = gm::simple_block({4, 4, 3, 4, 4});
  gsvc::ServiceOptions opt = small_service(1);
  opt.queue_capacity = 2;
  gsvc::SolverService svc(opt);
  const gsvc::ModelId model = svc.register_model(mesh, {{1.0, 0.3}}, Problem::make_bc(mesh));
  std::vector<std::future<gsvc::SolveResponse>> futures;
  gsvc::SolveRequest req;
  req.model = model;
  req.lambda = 1e4;
  constexpr int kSubmits = 64;
  for (int i = 0; i < kSubmits; ++i) futures.push_back(svc.submit(req));
  std::uint64_t rejected = 0, completed = 0;
  for (auto& f : futures) {
    const gsvc::SolveResponse r = f.get();
    if (r.status == geofem::SolveStatus::kRejected)
      ++rejected;
    else if (ok(r.status))
      ++completed;
  }
  EXPECT_EQ(rejected + completed, kSubmits);  // nothing lost, nothing failed
  EXPECT_GT(rejected, 0u);                    // 64 instant submits vs 1 worker
  EXPECT_GT(completed, 0u);
  const gsvc::SolverService::Counts c = svc.counts();
  EXPECT_EQ(c.submitted, kSubmits);
  EXPECT_EQ(c.rejected, rejected);
  EXPECT_EQ(c.completed, completed);
  EXPECT_EQ(c.failed, 0u);
}

TEST(SvcService, BatchIsNotStarvedByInteractiveFlood) {
  const gm::HexMesh mesh = gm::simple_block({3, 3, 2, 3, 3});
  gsvc::ServiceOptions opt = small_service(1);
  opt.interactive_burst = 2;
  gsvc::SolverService svc(opt);
  const gsvc::ModelId model = svc.register_model(mesh, {{1.0, 0.3}}, Problem::make_bc(mesh));

  // Occupy the single worker, then queue a flood of interactive work with a
  // few batch requests behind it.
  gsvc::SolveRequest blocker;
  blocker.model = model;
  blocker.lambda = 1e4;
  auto blocker_future = svc.submit(blocker);
  std::vector<std::future<gsvc::SolveResponse>> interactive, batch;
  for (int i = 0; i < 16; ++i) {
    gsvc::SolveRequest r;
    r.model = model;
    r.lambda = 1e4;
    r.priority = gsvc::Priority::kInteractive;
    interactive.push_back(svc.submit(r));
  }
  for (int i = 0; i < 4; ++i) {
    gsvc::SolveRequest r;
    r.model = model;
    r.lambda = 1e4;
    r.priority = gsvc::Priority::kBatch;
    batch.push_back(svc.submit(r));
  }
  blocker_future.get();
  double first_batch_done = 1e300, last_interactive_done = 0.0;
  for (auto& f : batch) {
    const gsvc::SolveResponse r = f.get();
    ASSERT_TRUE(ok(r.status));
    first_batch_done = std::min(first_batch_done, r.total_seconds);
  }
  for (auto& f : interactive) {
    const gsvc::SolveResponse r = f.get();
    ASSERT_TRUE(ok(r.status));
    last_interactive_done = std::max(last_interactive_done, r.total_seconds);
  }
  // Starvation-free: with burst=2 some batch request must complete before the
  // interactive backlog is fully drained (all requests were admitted at
  // essentially the same instant, so total_seconds orders completions).
  EXPECT_LT(first_batch_done, last_interactive_done);
}

TEST(SvcService, UnknownModelThrowsInvalidArgument) {
  gsvc::SolverService svc(small_service(1));
  gsvc::SolveRequest req;
  req.model = 3;
  try {
    svc.submit(req);
    FAIL() << "expected geofem::Error";
  } catch (const geofem::Error& e) {
    EXPECT_EQ(e.code(), geofem::StatusCode::kInvalidArgument);
  }
}

TEST(SvcService, TelemetryLandsInServiceRegistry) {
  const gm::HexMesh mesh = gm::simple_block({3, 3, 2, 3, 3});
  gsvc::SolverService svc(small_service(2));
  const gsvc::ModelId model = svc.register_model(mesh, {{1.0, 0.3}}, Problem::make_bc(mesh));
  gsvc::SolveRequest req;
  req.model = model;
  req.lambda = 1e4;
  req.priority = gsvc::Priority::kInteractive;
  for (int i = 0; i < 4; ++i) svc.submit(req).get();
  svc.publish_stats();
  const auto snap = svc.registry().snapshot();
  ASSERT_NE(snap.counter("svc.completed.interactive"), nullptr);
  EXPECT_EQ(*snap.counter("svc.completed.interactive"), 4u);
  const geofem::obs::HistogramData* lat = snap.histogram("svc.latency.interactive");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, 4u);
  EXPECT_GT(lat->quantile(0.5), 0.0);
  ASSERT_NE(snap.gauge("plan.cache.hits"), nullptr);
  EXPECT_DOUBLE_EQ(*snap.gauge("plan.cache.hits"), 3.0);  // 1 cold + 3 warm
  // the re-entrant session entry recorded library spans into the service
  // registry (core.setup comes from inside solve_system)
  bool saw_setup = false;
  for (const auto& sp : snap.spans) saw_setup |= sp.name == "core.setup";
  EXPECT_TRUE(saw_setup);
}

// ---------------------------------------------------------------------------
// Workload generator + replay
// ---------------------------------------------------------------------------

TEST(SvcWorkload, GenerationIsDeterministic) {
  gsvc::WorkloadOptions opt;
  opt.horizon = 2.0;
  opt.seed = 11;
  gsvc::TrafficClass inter;
  inter.priority = gsvc::Priority::kInteractive;
  inter.arrival = gsvc::ArrivalProcess::kPoisson;
  inter.rate = 50.0;
  inter.lambdas = {1e4, 1e6, 1e8};
  gsvc::TrafficClass batch;
  batch.priority = gsvc::Priority::kBatch;
  batch.arrival = gsvc::ArrivalProcess::kBurst;
  batch.rate = 30.0;
  batch.mean_burst = 4;
  batch.load_scales = {0.5, 1.0, 2.0};
  opt.classes = {inter, batch};

  const std::vector<gsvc::Event> a = gsvc::generate(opt);
  const std::vector<gsvc::Event> b = gsvc::generate(opt);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GT(a.size(), 50u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].request.lambda, b[i].request.lambda);
    EXPECT_EQ(a[i].request.load_scale, b[i].request.load_scale);
    EXPECT_EQ(a[i].request.priority, b[i].request.priority);
  }
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end(),
                             [](const gsvc::Event& x, const gsvc::Event& y) {
                               return x.time < y.time;
                             }));
  // changing the seed changes the schedule
  opt.seed = 12;
  const std::vector<gsvc::Event> c = gsvc::generate(opt);
  bool differs = c.size() != a.size();
  for (std::size_t i = 0; !differs && i < std::min(a.size(), c.size()); ++i)
    differs = a[i].time != c[i].time;
  EXPECT_TRUE(differs);
}

TEST(SvcWorkload, BurstArrivalsShareTimestamps) {
  gsvc::WorkloadOptions opt;
  opt.horizon = 5.0;
  gsvc::TrafficClass tc;
  tc.arrival = gsvc::ArrivalProcess::kBurst;
  tc.rate = 40.0;
  tc.mean_burst = 8;
  opt.classes = {tc};
  const std::vector<gsvc::Event> ev = gsvc::generate(opt);
  ASSERT_GT(ev.size(), 20u);
  int shared = 0;
  for (std::size_t i = 1; i < ev.size(); ++i) shared += ev[i].time == ev[i - 1].time;
  EXPECT_GT(shared, static_cast<int>(ev.size() / 2));  // mean burst 8 -> most share
}

TEST(SvcWorkload, ReplayIsLossless) {
  const gm::HexMesh mesh = gm::simple_block({3, 3, 2, 3, 3});
  gsvc::ServiceOptions sopt = small_service(4);
  sopt.keep_solutions = false;
  gsvc::SolverService svc(sopt);
  const gsvc::ModelId model = svc.register_model(mesh, {{1.0, 0.3}}, Problem::make_bc(mesh));

  gsvc::WorkloadOptions opt;
  opt.horizon = 1.0;
  gsvc::TrafficClass inter;
  inter.priority = gsvc::Priority::kInteractive;
  inter.rate = 30.0;
  inter.model = model;
  inter.lambdas = {1e4, 1e6};
  gsvc::TrafficClass batch;
  batch.priority = gsvc::Priority::kBatch;
  batch.arrival = gsvc::ArrivalProcess::kBurst;
  batch.rate = 20.0;
  batch.mean_burst = 4;
  batch.model = model;
  opt.classes = {inter, batch};

  const std::vector<gsvc::Event> events = gsvc::generate(opt);
  ASSERT_GT(events.size(), 10u);
  const gsvc::ReplayStats stats = gsvc::replay(svc, events, 0.0);
  EXPECT_EQ(stats.submitted, events.size());
  EXPECT_TRUE(stats.lossless());
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_GT(stats.throughput(), 0.0);
  svc.drain();
  const gsvc::SolverService::Counts c = svc.counts();
  EXPECT_EQ(c.submitted, stats.submitted);
  EXPECT_EQ(c.completed, stats.completed);
  EXPECT_EQ(c.rejected, stats.rejected);
}

TEST(SvcService, VectorizedOrderingUsesPerWorkerCachesAndStaysCorrect) {
  const gm::HexMesh mesh = gm::simple_block({3, 3, 2, 3, 3});
  gsvc::ServiceOptions opt = small_service(2);
  opt.solve.ordering = gcore::OrderingKind::kPDJDSMC;
  gsvc::SolverService svc(opt);
  const gsvc::ModelId model = svc.register_model(mesh, {{1.0, 0.3}}, Problem::make_bc(mesh));
  gsvc::SolveRequest req;
  req.model = model;
  req.lambda = 1e4;
  std::vector<std::future<gsvc::SolveResponse>> futures;
  for (int i = 0; i < 8; ++i) futures.push_back(svc.submit(req));
  std::vector<gsvc::SolveResponse> responses;
  for (auto& f : futures) responses.push_back(f.get());
  for (const auto& r : responses) ASSERT_TRUE(ok(r.status));
  // identical requests through (possibly different) per-worker caches must
  // produce bit-identical solutions — plans never shared across solves
  for (std::size_t i = 1; i < responses.size(); ++i) {
    ASSERT_EQ(responses[i].report.solution.size(), responses[0].report.solution.size());
    for (std::size_t d = 0; d < responses[0].report.solution.size(); ++d)
      ASSERT_EQ(responses[i].report.solution[d], responses[0].report.solution[d]);
  }
}
