#include <gtest/gtest.h>

#include <cmath>

#include "fem/assembly.hpp"
#include "fem/elasticity.hpp"
#include "mesh/hex_mesh.hpp"
#include "precond/bic.hpp"
#include "solver/cg.hpp"

namespace gf = geofem::fem;
namespace gm = geofem::mesh;

namespace {

std::array<std::array<double, 3>, 8> unit_hex() {
  return {{{0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {0, 1, 0},
           {0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {0, 1, 1}}};
}

}  // namespace

TEST(Elasticity, ShapeFunctionsPartitionOfUnity) {
  const auto n = gf::hex_shape(0.3, -0.6, 0.1);
  double sum = 0.0;
  for (double v : n) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-14);
}

TEST(Elasticity, StiffnessSymmetric) {
  double ke[24 * 24];
  gf::hex_stiffness(unit_hex(), {1.0, 0.3}, ke);
  for (int r = 0; r < 24; ++r)
    for (int c = 0; c < 24; ++c) EXPECT_NEAR(ke[24 * r + c], ke[24 * c + r], 1e-12);
}

TEST(Elasticity, RigidBodyModesInNullspace) {
  double ke[24 * 24];
  gf::hex_stiffness(unit_hex(), {1.0, 0.3}, ke);
  const auto xyz = unit_hex();
  // 3 translations + 3 (linearized) rotations
  for (int mode = 0; mode < 6; ++mode) {
    double u[24];
    for (int a = 0; a < 8; ++a) {
      const auto& p = xyz[static_cast<std::size_t>(a)];
      double d[3] = {0, 0, 0};
      switch (mode) {
        case 0: d[0] = 1; break;
        case 1: d[1] = 1; break;
        case 2: d[2] = 1; break;
        case 3: d[0] = -p[1]; d[1] = p[0]; break;  // rot z
        case 4: d[1] = -p[2]; d[2] = p[1]; break;  // rot x
        case 5: d[2] = -p[0]; d[0] = p[2]; break;  // rot y
      }
      for (int c = 0; c < 3; ++c) u[3 * a + c] = d[c];
    }
    for (int r = 0; r < 24; ++r) {
      double acc = 0.0;
      for (int c = 0; c < 24; ++c) acc += ke[24 * r + c] * u[c];
      EXPECT_NEAR(acc, 0.0, 1e-12) << "mode " << mode << " row " << r;
    }
  }
}

TEST(Elasticity, StiffnessPositiveSemiDefiniteDiagonal) {
  double ke[24 * 24];
  gf::hex_stiffness(unit_hex(), {1.0, 0.3}, ke);
  for (int r = 0; r < 24; ++r) EXPECT_GT(ke[24 * r + r], 0.0);
}

TEST(Elasticity, VolumeOfUnitHex) {
  EXPECT_NEAR(gf::hex_volume(unit_hex()), 1.0, 1e-14);
}

TEST(Elasticity, VolumeOfStretchedHex) {
  auto xyz = unit_hex();
  for (auto& p : xyz) p[2] *= 2.5;
  EXPECT_NEAR(gf::hex_volume(xyz), 2.5, 1e-12);
}

TEST(Assembly, MatrixIsSymmetric) {
  auto m = gm::unit_cube(3, 3, 3);
  auto sys = gf::assemble_elasticity(m, {{1.0, 0.3}});
  EXPECT_EQ(sys.a.n, m.num_nodes());
  EXPECT_NEAR(sys.a.symmetry_error(), 0.0, 1e-12);
}

TEST(Assembly, BodyForceSumsToTotalWeight) {
  auto m = gm::unit_cube(3, 2, 4, 3.0, 2.0, 4.0);
  gf::BoundaryConditions bc;
  bc.body_force(m, 2, -1.0);
  double total = 0.0;
  for (const auto& l : bc.loads) total += l.value;
  EXPECT_NEAR(total, -24.0, 1e-10);  // volume 3*2*4
}

TEST(Assembly, SurfaceLoadSumsToTractionTimesArea) {
  auto m = gm::unit_cube(4, 5, 3, 4.0, 5.0, 3.0);
  gf::BoundaryConditions bc;
  bc.surface_load(m, [](double, double, double z) { return std::abs(z - 3.0) < 1e-12; }, 2, -2.0);
  double total = 0.0;
  for (const auto& l : bc.loads) total += l.value;
  EXPECT_NEAR(total, -2.0 * 20.0, 1e-10);
}

/// End-to-end patch test: uniaxial compression of a cube must reproduce the
/// exact homogeneous solution u_z = -q z / E (with free lateral surfaces and
/// symmetric supports), since the exact field is linear in space.
TEST(Assembly, UniaxialPatchTest) {
  const double q = 0.7, e = 2.0, nu = 0.25, lz = 2.0;
  auto m = gm::unit_cube(3, 3, 3, 1.0, 1.0, lz);
  auto sys = gf::assemble_elasticity(m, {{e, nu}});

  gf::BoundaryConditions bc;
  bc.fix_nodes(m.nodes_where([](double, double, double z) { return z == 0.0; }), 2);
  bc.fix_nodes(m.nodes_where([](double x, double, double) { return x == 0.0; }), 0);
  bc.fix_nodes(m.nodes_where([](double, double y, double) { return y == 0.0; }), 1);
  bc.surface_load(m, [&](double, double, double z) { return std::abs(z - lz) < 1e-12; }, 2, -q);
  gf::apply_boundary_conditions(sys, bc);

  geofem::precond::BIC0 prec(sys.a);
  std::vector<double> x(sys.a.ndof(), 0.0);
  geofem::solver::CGOptions opt;
  opt.tolerance = 1e-12;
  auto res = geofem::solver::pcg(sys.a, prec, sys.b, x, opt);
  ASSERT_TRUE(res.converged());

  for (int i = 0; i < m.num_nodes(); ++i) {
    const auto& c = m.coords[static_cast<std::size_t>(i)];
    const double uz = x[static_cast<std::size_t>(i) * 3 + 2];
    const double ux = x[static_cast<std::size_t>(i) * 3 + 0];
    EXPECT_NEAR(uz, -q * c[2] / e, 1e-8);
    EXPECT_NEAR(ux, nu * q * c[0] / e, 1e-8);  // lateral expansion
  }
}

TEST(Assembly, DirichletValueReproduced) {
  auto m = gm::unit_cube(2, 2, 2);
  auto sys = gf::assemble_elasticity(m, {{1.0, 0.3}});
  gf::BoundaryConditions bc;
  bc.fix_nodes(m.nodes_where([](double, double, double z) { return z == 0.0; }), -1);
  // prescribe a nonzero displacement at the top
  auto top = m.nodes_where([](double, double, double z) { return z == 1.0; });
  for (int n : top) bc.fixes.push_back({n, 2, 0.01});
  gf::apply_boundary_conditions(sys, bc);

  geofem::precond::BIC0 prec(sys.a);
  std::vector<double> x(sys.a.ndof(), 0.0);
  geofem::solver::CGOptions opt;
  opt.tolerance = 1e-12;
  auto res = geofem::solver::pcg(sys.a, prec, sys.b, x, opt);
  ASSERT_TRUE(res.converged());
  for (int n : top) EXPECT_NEAR(x[static_cast<std::size_t>(n) * 3 + 2], 0.01, 1e-10);
}
