// Mixed-precision preconditioning (DESIGN.md §5i): fp32-stored factors under
// fp64 CG, the structured preconditioner identity (precond::Desc) that
// carries the precision tag, plan-key separation of the two precisions, and
// the automatic fp64 re-set-up when an fp32 attempt stagnates or its
// narrowing overflows. The recovery contract checked throughout: the fp64
// retry restarts COLD with the caller's own CG options, so its residual
// history is bit-identical to a solve that had asked for fp64 up front.
// Built as a separate binary labelled `precision` in ctest.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "contact/penalty.hpp"
#include "core/geofem.hpp"
#include "dist/dist_solver.hpp"
#include "fem/assembly.hpp"
#include "mesh/simple_block.hpp"
#include "obs/registry.hpp"
#include "part/partition.hpp"
#include "plan/fingerprint.hpp"
#include "precond/bic.hpp"
#include "precond/desc.hpp"
#include "precond/sb_bic0.hpp"
#include "sparse/block_csr.hpp"

namespace gc = geofem::contact;
namespace gcore = geofem::core;
namespace gd = geofem::dist;
namespace gf = geofem::fem;
namespace gm = geofem::mesh;
namespace go = geofem::obs;
namespace gpart = geofem::part;
namespace gp = geofem::precond;
namespace gplan = geofem::plan;
namespace gs = geofem::sparse;

using geofem::Error;
using geofem::SolveStatus;
using geofem::StatusCode;
using gp::Precision;

namespace {

/// The appendix simple-block contact problem at penalty `lambda` (same
/// construction as the resilience suite; lambda drives both the BIC(0)
/// conditioning cliff and — past fp32 range, ~3.4e38 — the deterministic
/// narrowing overflow).
struct Problem {
  gm::HexMesh mesh;
  gf::System sys;
  gc::Supernodes sn;

  explicit Problem(double lambda, gm::SimpleBlockParams bp = {4, 4, 3, 4, 4}) {
    mesh = gm::simple_block(bp);
    sys = gf::assemble_elasticity(mesh, {{1.0, 0.3}});
    gc::add_penalty(sys.a, mesh.contact_groups, lambda);
    gf::BoundaryConditions bc;
    bc.fix_nodes(mesh.nodes_where([](double, double, double z) { return z == 0.0; }), -1);
    const double zmax = mesh.bounding_box().hi[2];
    bc.surface_load(
        mesh, [&](double, double, double z) { return std::abs(z - zmax) < 1e-12; }, 2, -1.0);
    gf::apply_boundary_conditions(sys, bc);
    sn = gc::build_supernodes(sys.a.n, mesh.contact_groups);
  }
};

void expect_bitwise_equal(const std::vector<double>& a, const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]) << "residual " << i;
}

}  // namespace

// ---------------------------------------------------------------------------
// Structured identity: Desc rendering and the precision tag
// ---------------------------------------------------------------------------

TEST(Desc, Fp64RendersHistoricalNames) {
  gp::Desc d;
  d.kind = gp::PrecondKind::kSBBIC0;
  EXPECT_EQ(d.display_name(), "SB-BIC(0)");
  d.pdjds = true;
  EXPECT_EQ(d.display_name(), "SB-BIC(0) PDJDS");
  d.coarse = gp::CoarseKind::kDeflated;
  d.coarse_dim = 840;
  EXPECT_EQ(d.display_name(), "SB-BIC(0) PDJDS+coarse(deflated,840)");
}

TEST(Desc, Fp32TagIsAlwaysTheSuffix) {
  gp::Desc d;
  d.kind = gp::PrecondKind::kBIC0;
  d.precision = Precision::kSingle;
  EXPECT_EQ(d.display_name(), "BIC(0) [fp32]");
  d.coarse = gp::CoarseKind::kAdditive;
  d.coarse_dim = 12;
  EXPECT_EQ(d.display_name(), "BIC(0)+coarse(additive,12) [fp32]");
  d.coarse = gp::CoarseKind::kNone;
  d.custom = "fault-wrapper";  // verbatim, but still precision-tagged
  EXPECT_EQ(d.display_name(), "fault-wrapper [fp32]");
}

TEST(Desc, PreconditionersReportTypedIdentity) {
  const Problem pb(1e6);
  for (Precision p : {Precision::kDouble, Precision::kSingle}) {
    const gp::SBBIC0 sb(pb.sys.a, pb.sn, /*modified=*/false, p);
    EXPECT_EQ(sb.desc().kind, gp::PrecondKind::kSBBIC0);
    EXPECT_EQ(sb.desc().precision, p);
    EXPECT_EQ(sb.name(), sb.desc().display_name());
    const gp::BIC0 b(pb.sys.a, p);
    EXPECT_EQ(b.desc().kind, gp::PrecondKind::kBIC0);
    EXPECT_EQ(b.desc().precision, p);
  }
  const gp::SBBIC0 sb32(pb.sys.a, pb.sn, false, Precision::kSingle);
  EXPECT_EQ(sb32.name(), "SB-BIC(0) [fp32]");
}

TEST(Desc, NarrowOrThrowRejectsFp32Overflow) {
  geofem::simd::aligned_vector<float> dst;
  const std::vector<double> fits{1.0, -3.0e38, 1e-300};  // 1e-300 underflows to 0: allowed
  ASSERT_NO_THROW(gp::narrow_or_throw(fits, dst));
  EXPECT_EQ(dst[2], 0.0f);
  const std::vector<double> blows{1.0, 1e39};
  try {
    gp::narrow_or_throw(blows, dst);
    FAIL() << "1e39 narrowed without complaint";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), StatusCode::kFactorizationFailed);
  }
}

// ---------------------------------------------------------------------------
// Plan keys: precision separates fp32 plans, fp64 keys are unchanged
// ---------------------------------------------------------------------------

TEST(PlanKey, PrecisionSeparatesPlansAndDefaultIsUnperturbed) {
  const Problem pb(1e6);
  gplan::PlanConfig cfg;
  const auto k64 = gplan::make_key(pb.sys.a, pb.sn, cfg);
  cfg.precision = Precision::kSingle;
  const auto k32 = gplan::make_key(pb.sys.a, pb.sn, cfg);
  EXPECT_FALSE(k64 == k32);
  // kDouble must hash exactly like a config predating the precision field,
  // so caches survive the API change warm.
  cfg.precision = Precision::kDouble;
  EXPECT_TRUE(gplan::make_key(pb.sys.a, pb.sn, cfg) == k64);
}

// ---------------------------------------------------------------------------
// Serial solves: fp32 convergence band and the fp64 safety net
// ---------------------------------------------------------------------------

TEST(PrecisionSolve, Fp32ConvergesWithinIterationBandOfFp64) {
  // A healthy penalty: the fp32-stored factors are an inexact but fixed M, so
  // CG still converges to the fp64 tolerance — the issue's acceptance band is
  // <= +10% iterations over the fp64 run.
  const Problem pb(1e6);
  gcore::SolveConfig cfg;
  cfg.precond = gcore::PrecondKind::kSBBIC0;
  cfg.use_plan_cache = false;
  const auto r64 = gcore::solve_system(pb.sys, pb.sn, cfg);
  ASSERT_EQ(r64.status, SolveStatus::kConverged);
  EXPECT_EQ(r64.precond.precision, Precision::kDouble);

  cfg.precision = Precision::kSingle;
  const auto r32 = gcore::solve_system(pb.sys, pb.sn, cfg);
  ASSERT_EQ(r32.status, SolveStatus::kConverged);
  EXPECT_EQ(r32.precision_fallbacks, 0);
  EXPECT_EQ(r32.precond.precision, Precision::kSingle);
  EXPECT_NE(r32.precond_name.find("[fp32]"), std::string::npos);
  EXPECT_LE(r32.cg.relative_residual, cfg.cg.tolerance);
  EXPECT_LE(r32.cg.iterations,
            r64.cg.iterations + (r64.cg.iterations + 9) / 10);  // ceil(1.1x)
}

TEST(PrecisionSolve, NarrowingOverflowFallsBackBitIdenticallyToFp64) {
  // lambda = 1e39 > FLT_MAX: the fp32 narrowing throws during set-up, before
  // a single fp32 iteration, and the fp64 re-set-up restarts cold with the
  // caller's CG options — so the whole solve must replay a direct fp64 run
  // residual for residual. BIC(0), not SB-BIC(0): past fp64's 16 digits the
  // elasticity vanishes from the penalty-coupled supernode blocks, which are
  // singular on their own, while BIC(0)'s ~lambda*I diagonal blocks stay
  // factorable — the overflow must be the ONLY failure in play.
  const Problem pb(1e39);
  gcore::SolveConfig cfg;
  cfg.precond = gcore::PrecondKind::kBIC0;
  cfg.cg.max_iterations = 200;  // neither precision converges; keep it cheap
  cfg.cg.record_residuals = true;
  cfg.use_plan_cache = false;
  const auto r64 = gcore::solve_system(pb.sys, pb.sn, cfg);

  go::Registry reg;
  cfg.precision = Precision::kSingle;
  cfg.registry = &reg;
  const auto r32 = gcore::solve_system(pb.sys, pb.sn, cfg);
  EXPECT_EQ(r32.precision_fallbacks, 1);
  EXPECT_EQ(r32.fallback_iterations, 0);  // fp32 never iterated
  if (r64.status == SolveStatus::kConverged) {
    EXPECT_EQ(r32.status, SolveStatus::kFellBack);
    EXPECT_TRUE(r32.converged());
  } else {
    EXPECT_EQ(r32.status, r64.status);
  }
  expect_bitwise_equal(r64.cg.residual_history, r32.cg.residual_history);
  // The fallback is visible in telemetry, once.
  const auto snap = reg.snapshot();
  ASSERT_NE(snap.counter("core.fallback.precision"), nullptr);
  EXPECT_EQ(*snap.counter("core.fallback.precision"), 1u);
}

TEST(PrecisionSolve, Fp32StagnationTriggersExactlyOneFp64Resetup) {
  // Table 2's conditioning cliff: at lambda = 1e12 the fp32 BIC(0) attempt
  // stagnates (the safety-net window is armed from resilience.stagnation_
  // window even with resilience off). The fp64 re-set-up then runs with the
  // caller's own options — window 0, so it burns the full budget exactly like
  // the direct fp64 run it must reproduce bit for bit.
  const Problem pb(1e12);
  gcore::SolveConfig cfg;
  cfg.precond = gcore::PrecondKind::kBIC0;
  cfg.cg.max_iterations = 400;
  cfg.cg.record_residuals = true;
  cfg.use_plan_cache = false;
  cfg.resilience.stagnation_window = 100;  // arms only the fp32 attempt
  const auto r64 = gcore::solve_system(pb.sys, pb.sn, cfg);
  EXPECT_EQ(r64.status, SolveStatus::kMaxIterations);
  EXPECT_EQ(r64.precision_fallbacks, 0);

  cfg.precision = Precision::kSingle;
  const auto r32 = gcore::solve_system(pb.sys, pb.sn, cfg);
  EXPECT_EQ(r32.precision_fallbacks, 1);
  EXPECT_GT(r32.fallback_iterations, 0);              // fp32 iterated, then stalled
  EXPECT_LT(r32.fallback_iterations, cfg.cg.max_iterations);  // ... detected early
  ASSERT_EQ(r32.attempts.size(), 1u);                 // one kind, re-set-up once
  expect_bitwise_equal(r64.cg.residual_history, r32.cg.residual_history);
}

TEST(PrecisionSolve, Fp64DefaultIsUntouchedByTheApiChange) {
  // The precision knob must be invisible at its default: same status, same
  // residuals, no fallback bookkeeping.
  const Problem pb(1e6);
  gcore::SolveConfig cfg;
  cfg.precond = gcore::PrecondKind::kBIC0;
  cfg.cg.record_residuals = true;
  cfg.use_plan_cache = false;
  const auto rep = gcore::solve_system(pb.sys, pb.sn, cfg);
  EXPECT_EQ(rep.status, SolveStatus::kConverged);
  EXPECT_EQ(rep.precision_fallbacks, 0);
  EXPECT_EQ(rep.precond.precision, Precision::kDouble);
  EXPECT_EQ(rep.precond_name.find("[fp32]"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Distributed solves: lockstep fp64 re-set-up across ranks
// ---------------------------------------------------------------------------

TEST(PrecisionDist, OverflowFallsBackInLockstepBitIdenticallyToFp64) {
  // Same BIC(0)-not-SB-BIC(0) reasoning as the serial overflow test: at
  // lambda = 1e39 only the fp32 narrowing may fail, on every rank.
  const Problem pb(1e39);
  const auto p = gpart::rcb_contact_aware(pb.mesh, 4);
  const auto systems = gpart::distribute(pb.sys.a, pb.sys.b, p);
  gd::DistOptions opt;
  opt.cg.max_iterations = 200;  // neither precision converges; keep it cheap
  opt.cg.record_residuals = true;
  const gd::PrecondFactory factory = [](const gpart::LocalSystem&, const gs::BlockCSR& aii,
                                        Precision precision) -> gp::PreconditionerPtr {
    return std::make_unique<gp::BIC0>(aii, precision);
  };
  const auto r64 = gd::solve_distributed(systems, factory, opt);

  opt.precision = Precision::kSingle;
  const auto r32 = gd::solve_distributed(systems, factory, opt);
  EXPECT_EQ(r32.precision_fallbacks, 1);
  EXPECT_EQ(r32.fallback_iterations, 0);  // every rank failed at set-up
  if (r64.status == SolveStatus::kConverged) {
    EXPECT_EQ(r32.status, SolveStatus::kFellBack);
    for (SolveStatus s : r32.status_per_rank) EXPECT_EQ(s, SolveStatus::kFellBack);
  }
  // The all-attempts history carries one extra initial residual from the
  // cold restart; past it, the retry replays the direct fp64 run exactly.
  ASSERT_EQ(r32.residual_history.size(), r64.residual_history.size() + 1);
  const std::vector<double> tail(r32.residual_history.begin() + 1, r32.residual_history.end());
  expect_bitwise_equal(r64.residual_history, tail);
}

TEST(PrecisionDist, StagnatedFp32FallsBackInLockstepAndReplaysFp64Tail) {
  // The stagnation decision is allreduced, so every rank rebuilds at fp64
  // together; the retry restarts cold, so the post-fallback part of the
  // (all-attempts) history replays the direct fp64 run bit for bit.
  const Problem pb(1e12);
  const auto p = gpart::rcb_contact_aware(pb.mesh, 4);
  const auto systems = gpart::distribute(pb.sys.a, pb.sys.b, p);
  gd::DistOptions opt;
  opt.cg.max_iterations = 400;
  opt.cg.record_residuals = true;
  opt.resilience.stagnation_window = 100;  // arms only the fp32 attempt
  const gd::PrecondFactory bic = [](const gpart::LocalSystem&, const gs::BlockCSR& aii,
                                    Precision precision) -> gp::PreconditionerPtr {
    return std::make_unique<gp::BIC0>(aii, precision);
  };
  const auto r64 = gd::solve_distributed(systems, bic, opt);
  EXPECT_EQ(r64.precision_fallbacks, 0);

  opt.precision = Precision::kSingle;
  const auto r32 = gd::solve_distributed(systems, bic, opt);
  EXPECT_EQ(r32.precision_fallbacks, 1);
  const int burnt = r32.fallback_iterations;
  EXPECT_GT(burnt, 0);                         // fp32 iterated, then stalled
  EXPECT_LT(burnt, opt.cg.max_iterations);     // ... detected early
  // All-attempts history: [1.0, fp32 residuals x burnt, 1.0, fp64 retry].
  // The retry draws on the SHARED iteration budget, so it replays the first
  // max_iterations - burnt residuals of the direct fp64 run bit for bit.
  ASSERT_EQ(r32.residual_history.size(),
            static_cast<std::size_t>(opt.cg.max_iterations) + 2);
  const std::vector<double> replay(r32.residual_history.begin() + burnt + 1,
                                   r32.residual_history.end());
  const std::vector<double> direct(r64.residual_history.begin(),
                                   r64.residual_history.begin() +
                                       static_cast<std::ptrdiff_t>(replay.size()));
  expect_bitwise_equal(direct, replay);
}
