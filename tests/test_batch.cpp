// Batched multi-RHS path suite (ctest label `batch`, DESIGN.md §5k):
// SpMM/multi-vector kernels vs their single-RHS references, multi-column
// preconditioner application, the batched CG driver (batch-of-1 bitwise
// identity, per-column convergence masking, compaction), the batched
// core/dist entry points, and service-level request coalescing.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <future>
#include <stdexcept>
#include <vector>

#include "contact/penalty.hpp"
#include "core/geofem.hpp"
#include "dist/dist_solver.hpp"
#include "fem/assembly.hpp"
#include "mesh/simple_block.hpp"
#include "par/par.hpp"
#include "part/local_system.hpp"
#include "part/partition.hpp"
#include "precond/bic.hpp"
#include "precond/diagonal.hpp"
#include "precond/sb_bic0.hpp"
#include "reorder/coloring.hpp"
#include "reorder/djds.hpp"
#include "solver/batch.hpp"
#include "solver/cg.hpp"
#include "sparse/multivec.hpp"
#include "svc/service.hpp"
#include "util/rng.hpp"

namespace gc = geofem::contact;
namespace gcore = geofem::core;
namespace gd = geofem::dist;
namespace gf = geofem::fem;
namespace gm = geofem::mesh;
namespace gpar = geofem::par;
namespace gpart = geofem::part;
namespace gp = geofem::precond;
namespace gr = geofem::reorder;
namespace gso = geofem::solver;
namespace gsp = geofem::sparse;
namespace gsvc = geofem::svc;
namespace gutil = geofem::util;

namespace {

/// Tiny contact problem (penalty-tied groups, fixed bottom, loaded top) —
/// same shape the precond/solver suites use.
struct ContactProblem {
  gm::HexMesh mesh;
  gf::System sys;
  gc::Supernodes supers;

  explicit ContactProblem(double lambda = 1e4, gm::SimpleBlockParams p = {3, 3, 2, 3, 3}) {
    mesh = gm::simple_block(p);
    sys = gf::assemble_elasticity(mesh, {{1.0, 0.3}});
    gc::add_penalty(sys.a, mesh.contact_groups, lambda);
    gf::apply_boundary_conditions(sys, make_bc(mesh));
    supers = gc::build_supernodes(mesh.num_nodes(), mesh.contact_groups);
  }

  static gf::BoundaryConditions make_bc(const gm::HexMesh& m) {
    gf::BoundaryConditions bc;
    bc.fix_nodes(m.nodes_where([](double, double, double z) { return z == 0.0; }), -1);
    const double zmax = m.bounding_box().hi[2];
    bc.surface_load(
        m, [&](double, double, double z) { return std::abs(z - zmax) < 1e-12; }, 2, -1.0);
    return bc;
  }
};

/// value(dof i, col c) = out[i*k + c]
std::vector<double> interleave(const std::vector<std::vector<double>>& cols) {
  const std::size_t k = cols.size();
  const std::size_t n = cols[0].size();
  std::vector<double> out(n * k);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t c = 0; c < k; ++c) out[i * k + c] = cols[c][i];
  return out;
}

std::vector<double> column(const std::vector<double>& x, std::size_t n, int k, int c) {
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = x[i * static_cast<std::size_t>(k) + c];
  return out;
}

std::vector<double> random_vector(std::size_t n, gutil::Rng& rng) {
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

double max_abs_diff(const std::vector<double>& a, const std::vector<double>& b) {
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) d = std::max(d, std::abs(a[i] - b[i]));
  return d;
}

double max_abs(const std::vector<double>& a) {
  double m = 0.0;
  for (double x : a) m = std::max(m, std::abs(x));
  return m;
}

/// ||b - A x||_2 / ||b||_2 on the CSR matrix (true residual, not recurrence).
double true_residual(const gsp::BlockCSR& a, const std::vector<double>& b,
                     const std::vector<double>& x) {
  std::vector<double> ax(x.size());
  a.spmv(x, ax, nullptr, nullptr);
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    num += (b[i] - ax[i]) * (b[i] - ax[i]);
    den += b[i] * b[i];
  }
  return std::sqrt(num / den);
}

gsvc::ServiceOptions batch_service(int workers, int max_batch, double window) {
  gsvc::ServiceOptions opt;
  opt.workers = workers;
  opt.queue_capacity = 256;
  opt.solve.precond = gcore::PrecondKind::kSBBIC0;
  opt.solve.cg.tolerance = 1e-8;
  opt.max_batch = max_batch;
  opt.batch_window = window;
  return opt;
}

}  // namespace

// ---------------------------------------------------------------------------
// Kernels: SpMM and the multi-vector BLAS-1 grid
// ---------------------------------------------------------------------------

TEST(BatchKernels, CsrSpmmMatchesSequentialSpmv) {
  ContactProblem pb;
  const std::size_t n = pb.sys.a.ndof();
  gutil::Rng rng(42);
  for (int k : {1, 2, 3, 4, 8}) {
    std::vector<std::vector<double>> cols;
    for (int c = 0; c < k; ++c) cols.push_back(random_vector(n, rng));
    const std::vector<double> xi = interleave(cols);
    std::vector<double> yi(n * static_cast<std::size_t>(k));
    pb.sys.a.spmm(xi, yi, k, nullptr, nullptr);
    for (int c = 0; c < k; ++c) {
      std::vector<double> y(n);
      pb.sys.a.spmv(cols[static_cast<std::size_t>(c)], y, nullptr, nullptr);
      const std::vector<double> ym = column(yi, n, k, c);
      // same per-column sums, possibly different rounding (AVX2 lane tier)
      EXPECT_LT(max_abs_diff(ym, y), 1e-12 * std::max(1.0, max_abs(y)))
          << "k=" << k << " col=" << c;
    }
  }
}

TEST(BatchKernels, DjdsSpmmMatchesSequentialSpmv) {
  ContactProblem pb;
  const auto g = gsp::graph_of(pb.sys.a);
  const auto q = gr::quotient_graph(g, pb.supers.node_to_super, pb.supers.count());
  const gr::Coloring coloring =
      gr::lift_coloring(gr::multicolor(q, 10), pb.supers.node_to_super, pb.sys.a.n);
  gr::DJDSMatrix dj(pb.sys.a, coloring, &pb.supers, {});
  const std::size_t n = pb.sys.a.ndof();
  gutil::Rng rng(43);
  for (int k : {2, 4, 8}) {
    std::vector<std::vector<double>> cols;  // permuted (DJDS) vector space
    for (int c = 0; c < k; ++c) cols.push_back(random_vector(n, rng));
    const std::vector<double> xi = interleave(cols);
    std::vector<double> yi(n * static_cast<std::size_t>(k));
    dj.spmm(xi, yi, k, nullptr, nullptr);
    for (int c = 0; c < k; ++c) {
      std::vector<double> y(n);
      dj.spmv(cols[static_cast<std::size_t>(c)], y, nullptr, nullptr);
      const std::vector<double> ym = column(yi, n, k, c);
      EXPECT_LT(max_abs_diff(ym, y), 1e-12 * std::max(1.0, max_abs(y)))
          << "k=" << k << " col=" << c;
    }
  }
}

TEST(BatchKernels, DotMultiBitIdenticalAcrossTeamsAndWidth) {
  // n deliberately not a multiple of the reduction chunk
  const std::size_t n = 3001;
  const int k = 3;
  gutil::Rng rng(7);
  std::vector<std::vector<double>> xc, yc;
  for (int c = 0; c < k; ++c) {
    xc.push_back(random_vector(n, rng));
    yc.push_back(random_vector(n, rng));
  }
  const std::vector<double> xi = interleave(xc), yi = interleave(yc);
  double ref[3];
  {
    gpar::TeamScope scope(1);
    gsp::dot_multi(xi.data(), yi.data(), n, k, ref);
  }
  for (int team : {2, 4}) {
    gpar::TeamScope scope(team);
    double out[3];
    gsp::dot_multi(xi.data(), yi.data(), n, k, out);
    for (int c = 0; c < k; ++c) EXPECT_EQ(out[c], ref[c]) << "team=" << team << " col=" << c;
  }
  // per-column result is independent of the batch width: a k=1 dot of the
  // gathered column lands on the same chunk grid and combine tree
  for (int c = 0; c < k; ++c) {
    double one;
    gsp::dot_multi(xc[static_cast<std::size_t>(c)].data(), yc[static_cast<std::size_t>(c)].data(),
                   n, 1, &one);
    EXPECT_EQ(one, ref[c]) << "col=" << c;
  }
}

TEST(BatchKernels, CompactColumnsAndGatherScatterRoundTrip) {
  const std::size_t n = 5;
  const int k_old = 4;
  std::vector<double> x(n * k_old);
  for (std::size_t i = 0; i < n; ++i)
    for (int c = 0; c < k_old; ++c) x[i * k_old + c] = 10.0 * static_cast<double>(i) + c;
  // gather/scatter round trip
  std::vector<double> col(n);
  gsp::gather_column(x.data(), n, k_old, 2, col.data());
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(col[i], 10.0 * static_cast<double>(i) + 2.0);
  gsp::scatter_column(col.data(), n, k_old, 2, x.data());
  // in-place compaction keeps the surviving columns exactly
  const std::vector<int> keep = {0, 2, 3};
  gsp::compact_columns(x.data(), n, k_old, keep.data(), static_cast<int>(keep.size()));
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < keep.size(); ++j)
      EXPECT_EQ(x[i * keep.size() + j],
                10.0 * static_cast<double>(i) + static_cast<double>(keep[j]));
}

// ---------------------------------------------------------------------------
// Preconditioners: apply_multi vs per-column apply
// ---------------------------------------------------------------------------

TEST(BatchPrecond, ApplyMultiMatchesApplyPerColumn) {
  ContactProblem pb;
  const std::size_t n = pb.sys.a.ndof();
  const int k = 3;
  gutil::Rng rng(11);
  std::vector<std::vector<double>> rc;
  for (int c = 0; c < k; ++c) rc.push_back(random_vector(n, rng));
  const std::vector<double> ri = interleave(rc);
  const gcore::PrecondKind kinds[] = {
      gcore::PrecondKind::kDiagonal, gcore::PrecondKind::kBlockDiagonal,
      gcore::PrecondKind::kScalarIC0, gcore::PrecondKind::kBIC0,
      gcore::PrecondKind::kBIC1,     gcore::PrecondKind::kSBBIC0};
  for (const auto kind : kinds) {
    const auto m = gcore::make_preconditioner(kind, pb.sys.a, pb.supers);
    std::vector<double> zi(n * static_cast<std::size_t>(k));
    m->apply_multi(ri, zi, k);
    for (int c = 0; c < k; ++c) {
      std::vector<double> z(n);
      m->apply(rc[static_cast<std::size_t>(c)], z);
      const std::vector<double> zm = column(zi, n, k, c);
      // columns stay independent; overrides may round per the multi kernels
      EXPECT_LT(max_abs_diff(zm, z), 1e-12 * std::max(1.0, max_abs(z)))
          << gcore::to_string(kind) << " col=" << c;
    }
  }
}

// ---------------------------------------------------------------------------
// Batched CG driver
// ---------------------------------------------------------------------------

TEST(BatchSolver, BatchOfOneBitIdenticalToPcg) {
  ContactProblem pb;
  const std::size_t n = pb.sys.a.ndof();
  const gcore::PrecondKind kinds[] = {gcore::PrecondKind::kDiagonal,
                                      gcore::PrecondKind::kBlockDiagonal,
                                      gcore::PrecondKind::kBIC0, gcore::PrecondKind::kSBBIC0};
  for (const auto kind : kinds) {
    const auto m = gcore::make_preconditioner(kind, pb.sys.a, pb.supers);
    for (int threads : {1, 2, 4}) {
      gpar::TeamScope scope(threads);
      gso::CGOptions copt;
      copt.tolerance = 1e-8;
      copt.record_residuals = true;
      std::vector<double> x_ref(n, 0.0);
      const gso::CGResult ref = gso::pcg(pb.sys.a, *m, pb.sys.b, x_ref, copt);

      gso::BatchedCGOptions bopt;
      bopt.cg = copt;
      std::vector<double> x(n, 0.0);
      const gso::BatchedCGResult res = gso::pcg_batched(pb.sys.a, *m, pb.sys.b, x, 1, bopt);
      ASSERT_EQ(res.columns.size(), 1u);
      const gso::CGResult& c0 = res.columns[0];
      EXPECT_EQ(c0.status, ref.status) << gcore::to_string(kind) << " t=" << threads;
      EXPECT_EQ(c0.iterations, ref.iterations);
      EXPECT_EQ(c0.relative_residual, ref.relative_residual);
      ASSERT_EQ(c0.residual_history.size(), ref.residual_history.size());
      for (std::size_t i = 0; i < ref.residual_history.size(); ++i)
        ASSERT_EQ(c0.residual_history[i], ref.residual_history[i]) << "it " << i;
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(x[i], x_ref[i]) << gcore::to_string(kind) << " t=" << threads << " dof " << i;
    }
  }
}

TEST(BatchSolver, MultiColumnMatchesIndividualSolvesToTolerance) {
  ContactProblem pb;
  const std::size_t n = pb.sys.a.ndof();
  const auto m = gcore::make_preconditioner(gcore::PrecondKind::kSBBIC0, pb.sys.a, pb.supers);
  const double scales[] = {1.0, 2.0, 0.5};
  std::vector<std::vector<double>> cols;
  for (double s : scales) {
    cols.push_back(pb.sys.b);
    for (auto& v : cols.back()) v *= s;
  }
  const int k = static_cast<int>(cols.size());
  gso::BatchedCGOptions bopt;
  bopt.cg.tolerance = 1e-8;
  bopt.cg.record_residuals = true;
  const std::vector<double> bi = interleave(cols);
  std::vector<double> xi(n * static_cast<std::size_t>(k), 0.0);
  const gso::BatchedCGResult res = gso::pcg_batched(pb.sys.a, *m, bi, xi, k, bopt);
  ASSERT_EQ(res.columns.size(), static_cast<std::size_t>(k));
  EXPECT_TRUE(res.all_converged());
  for (int c = 0; c < k; ++c) {
    const std::vector<double> xc = column(xi, n, k, c);
    EXPECT_LE(res.columns[static_cast<std::size_t>(c)].relative_residual, 1e-8);
    EXPECT_LT(true_residual(pb.sys.a, cols[static_cast<std::size_t>(c)], xc), 5e-7);
    // cross-check against the plain single-RHS solve
    std::vector<double> x_ref(n, 0.0);
    gso::pcg(pb.sys.a, *m, cols[static_cast<std::size_t>(c)], x_ref, bopt.cg);
    EXPECT_LT(max_abs_diff(xc, x_ref), 1e-6 * std::max(1.0, max_abs(x_ref))) << "col " << c;
  }
  EXPECT_GT(res.iterations, 0);
  EXPECT_GT(res.flops.total(), 0u);
}

TEST(BatchSolver, MixedOutcomesPerColumn) {
  ContactProblem pb;
  const std::size_t n = pb.sys.a.ndof();
  const auto m = gcore::make_preconditioner(gcore::PrecondKind::kSBBIC0, pb.sys.a, pb.supers);
  // probe: iterations a loose solve needs
  gso::CGOptions probe;
  probe.tolerance = 1e-2;
  std::vector<double> xp(n, 0.0);
  const int loose_iters = gso::pcg(pb.sys.a, *m, pb.sys.b, xp, probe).iterations;

  gso::BatchedCGOptions bopt;
  bopt.cg.max_iterations = loose_iters + 2;  // enough for 1e-2, hopeless for 1e-13
  bopt.tolerances = {1e-2, 1e-13};
  const std::vector<double> bi = interleave({pb.sys.b, pb.sys.b});
  std::vector<double> xi(n * 2, 0.0);
  const gso::BatchedCGResult res = gso::pcg_batched(pb.sys.a, *m, bi, xi, 2, bopt);
  EXPECT_EQ(res.columns[0].status, geofem::SolveStatus::kConverged);
  EXPECT_LE(res.columns[0].relative_residual, 1e-2);
  EXPECT_LT(res.columns[0].iterations, bopt.cg.max_iterations);
  EXPECT_EQ(res.columns[1].status, geofem::SolveStatus::kMaxIterations);
  EXPECT_EQ(res.columns[1].iterations, bopt.cg.max_iterations);
  EXPECT_EQ(res.iterations, bopt.cg.max_iterations);
  EXPECT_FALSE(res.all_converged());
  // the frozen loose column still carries its solution at freeze time
  EXPECT_LT(true_residual(pb.sys.a, pb.sys.b, column(xi, n, 2, 0)), 1e-1);
}

TEST(BatchSolver, CompactionTriggersAndPreservesResults) {
  ContactProblem pb;
  const std::size_t n = pb.sys.a.ndof();
  const auto m = gcore::make_preconditioner(gcore::PrecondKind::kSBBIC0, pb.sys.a, pb.supers);
  const int k = 6;
  std::vector<std::vector<double>> cols(static_cast<std::size_t>(k), pb.sys.b);
  gso::BatchedCGOptions bopt;
  // spread freeze points so the working batch shrinks in steps
  bopt.tolerances = {1e-2, 1e-3, 1e-5, 1e-7, 1e-8, 1e-9};
  bopt.compact_threshold = 0.9;  // repack on (almost) every freeze
  const std::vector<double> bi = interleave(cols);
  std::vector<double> xi(n * static_cast<std::size_t>(k), 0.0);
  const gso::BatchedCGResult res = gso::pcg_batched(pb.sys.a, *m, bi, xi, k, bopt);
  EXPECT_TRUE(res.all_converged());
  EXPECT_GE(res.compactions, 1);
  for (int c = 0; c < k; ++c) {
    EXPECT_LE(res.columns[static_cast<std::size_t>(c)].relative_residual,
              bopt.tolerances[static_cast<std::size_t>(c)]);
    EXPECT_LT(true_residual(pb.sys.a, pb.sys.b, column(xi, n, k, c)),
              50.0 * bopt.tolerances[static_cast<std::size_t>(c)]);
  }
  // earlier-freezing columns must not have burnt the full budget
  EXPECT_LT(res.columns[0].iterations, res.columns[5].iterations);
}

TEST(BatchSolver, ContractViolationsThrow) {
  ContactProblem pb;
  const std::size_t n = pb.sys.a.ndof();
  const auto m = gcore::make_preconditioner(gcore::PrecondKind::kDiagonal, pb.sys.a, pb.supers);
  // zero RHS column
  {
    const std::vector<double> bi = interleave({pb.sys.b, std::vector<double>(n, 0.0)});
    std::vector<double> xi(n * 2, 0.0);
    EXPECT_THROW(gso::pcg_batched(pb.sys.a, *m, bi, xi, 2, {}), std::logic_error);
  }
  // non-classic variant with k > 1
  {
    gso::BatchedCGOptions bopt;
    bopt.cg.variant = gso::CGVariant::kGropp;
    const std::vector<double> bi = interleave({pb.sys.b, pb.sys.b});
    std::vector<double> xi(n * 2, 0.0);
    EXPECT_THROW(gso::pcg_batched(pb.sys.a, *m, bi, xi, 2, bopt), std::logic_error);
  }
}

// ---------------------------------------------------------------------------
// core::solve_system_batched
// ---------------------------------------------------------------------------

TEST(BatchCore, BatchOfOneBitIdenticalToSolveSystem) {
  ContactProblem pb;
  struct Case {
    gcore::OrderingKind ordering;
    gp::Precision precision;
  };
  const Case cases[] = {{gcore::OrderingKind::kNatural, gp::Precision::kDouble},
                        {gcore::OrderingKind::kNatural, gp::Precision::kSingle},
                        {gcore::OrderingKind::kPDJDSMC, gp::Precision::kDouble}};
  for (const Case& c : cases) {
    gcore::SolveConfig cfg;
    cfg.precond = gcore::PrecondKind::kSBBIC0;
    cfg.ordering = c.ordering;
    cfg.precision = c.precision;
    cfg.cg.tolerance = 1e-8;
    cfg.cg.record_residuals = true;
    cfg.use_plan_cache = false;
    const gcore::SolveReport ref = gcore::solve_system(pb.sys, pb.supers, cfg);
    const auto reports = gcore::solve_system_batched(pb.sys, pb.supers, cfg, {pb.sys.b});
    ASSERT_EQ(reports.size(), 1u);
    const gcore::SolveReport& r = reports[0];
    EXPECT_EQ(r.status, ref.status);
    EXPECT_EQ(r.cg.iterations, ref.cg.iterations);
    EXPECT_EQ(r.cg.relative_residual, ref.cg.relative_residual);
    ASSERT_EQ(r.cg.residual_history.size(), ref.cg.residual_history.size());
    for (std::size_t i = 0; i < ref.cg.residual_history.size(); ++i)
      ASSERT_EQ(r.cg.residual_history[i], ref.cg.residual_history[i]);
    ASSERT_EQ(r.solution.size(), ref.solution.size());
    for (std::size_t i = 0; i < ref.solution.size(); ++i)
      ASSERT_EQ(r.solution[i], ref.solution[i]) << "dof " << i;
  }
}

TEST(BatchCore, MultiColumnSharesSetupAndMatchesSeparateSolves) {
  ContactProblem pb;
  gcore::SolveConfig cfg;
  cfg.precond = gcore::PrecondKind::kSBBIC0;
  cfg.cg.tolerance = 1e-8;
  cfg.use_plan_cache = false;
  std::vector<double> b2 = pb.sys.b;
  for (auto& v : b2) v *= 2.0;
  const auto reports = gcore::solve_system_batched(pb.sys, pb.supers, cfg, {pb.sys.b, b2});
  ASSERT_EQ(reports.size(), 2u);
  for (const auto& r : reports) ASSERT_TRUE(ok(r.status));
  // shared set-up bookkeeping replicated into every column's report
  EXPECT_EQ(reports[0].plan_reused, reports[1].plan_reused);
  EXPECT_EQ(reports[0].setup_seconds, reports[1].setup_seconds);
  EXPECT_EQ(reports[0].precond_name, reports[1].precond_name);
  EXPECT_EQ(reports[0].cg.solve_seconds, reports[1].cg.solve_seconds);  // batch wall time
  // scaling a RHS by a power of two scales the whole trajectory exactly
  EXPECT_EQ(reports[0].cg.iterations, reports[1].cg.iterations);
  double err = 0.0;
  for (std::size_t i = 0; i < reports[0].solution.size(); ++i)
    err = std::max(err, std::abs(reports[1].solution[i] - 2.0 * reports[0].solution[i]));
  EXPECT_LT(err, 1e-12 * std::max(1.0, max_abs(reports[0].solution)));
  // ... and each column matches its own single solve to solver tolerance
  for (int c = 0; c < 2; ++c) {
    const gf::System one{pb.sys.a, c == 0 ? pb.sys.b : b2};
    const gcore::SolveReport ref = gcore::solve_system(one, pb.supers, cfg);
    EXPECT_LT(max_abs_diff(reports[static_cast<std::size_t>(c)].solution, ref.solution),
              1e-6 * std::max(1.0, max_abs(ref.solution)))
        << "col " << c;
  }
  // multi-RHS is the direct path only: resilience must be rejected for k > 1
  gcore::SolveConfig bad = cfg;
  bad.resilience.enabled = true;
  EXPECT_THROW(gcore::solve_system_batched(pb.sys, pb.supers, bad, {pb.sys.b, b2}),
               std::logic_error);
}

TEST(BatchCore, MultiBcColumnsBitwiseMatchScaledSinglePath) {
  gm::HexMesh mesh = gm::simple_block({3, 3, 2, 3, 3});
  const gf::BoundaryConditions bc = ContactProblem::make_bc(mesh);
  auto assembled = [&] {
    gf::System s = gf::assemble_elasticity(mesh, {{1.0, 0.3}});
    gc::add_penalty(s.a, mesh.contact_groups, 1e4);
    return s;
  };
  gf::System multi = assembled();
  const std::vector<double> b_before = multi.b;
  const std::vector<double> scales = {1.0, 2.0, 0.5};
  const auto cols = gf::apply_boundary_conditions_multi(multi, bc, scales);
  ASSERT_EQ(cols.size(), scales.size());
  EXPECT_EQ(multi.b, b_before);  // per-column RHS live in the return value
  for (std::size_t c = 0; c < scales.size(); ++c) {
    gf::System single = assembled();
    gf::BoundaryConditions scaled = bc;
    for (auto& l : scaled.loads) l.value *= scales[c];
    gf::apply_boundary_conditions(single, scaled);
    ASSERT_EQ(cols[c].size(), single.b.size());
    for (std::size_t i = 0; i < single.b.size(); ++i)
      ASSERT_EQ(cols[c][i], single.b[i]) << "col " << c << " dof " << i;
    // the one shared elimination sweep leaves the matrix exactly as the
    // single path would (scales only touch b)
    ASSERT_EQ(multi.a.val.size(), single.a.val.size());
    for (std::size_t v = 0; v < single.a.val.size(); ++v)
      ASSERT_EQ(multi.a.val[v], single.a.val[v]);
  }
}

// ---------------------------------------------------------------------------
// dist::solve_distributed_batched
// ---------------------------------------------------------------------------

TEST(BatchDist, BatchOfOneBitIdenticalAcrossFourRanks) {
  ContactProblem pb;
  const auto p = gpart::rcb_contact_aware(pb.mesh, 4);
  auto systems = gpart::distribute(pb.sys.a, pb.sys.b, p);
  gd::DistOptions dopt;
  dopt.cg.tolerance = 1e-8;
  dopt.cg.record_residuals = true;

  std::vector<double> x_ref;
  const gd::DistResult ref = gd::solve_distributed(systems, [](const gpart::LocalSystem&,
                                                               const gsp::BlockCSR& aii,
                                                               gp::Precision) {
    return std::make_unique<gp::BIC0>(aii);
  }, dopt, &x_ref);
  ASSERT_TRUE(ref.converged());

  std::vector<std::vector<std::vector<double>>> rhs(1);
  for (const auto& s : systems) rhs[0].push_back(s.b);
  std::vector<std::vector<double>> xg;
  const auto res = gd::solve_distributed_batched(
      systems,
      [](const gpart::LocalSystem&, const gsp::BlockCSR& aii, gp::Precision) {
        return std::make_unique<gp::BIC0>(aii);
      },
      rhs, dopt, &xg);
  ASSERT_EQ(res.size(), 1u);
  ASSERT_EQ(xg.size(), 1u);
  EXPECT_EQ(res[0].status, ref.status);
  EXPECT_EQ(res[0].iterations, ref.iterations);
  ASSERT_EQ(res[0].residual_history.size(), ref.residual_history.size());
  for (std::size_t i = 0; i < ref.residual_history.size(); ++i)
    ASSERT_EQ(res[0].residual_history[i], ref.residual_history[i]);
  ASSERT_EQ(xg[0].size(), x_ref.size());
  for (std::size_t i = 0; i < x_ref.size(); ++i) ASSERT_EQ(xg[0][i], x_ref[i]);
}

TEST(BatchDist, ColumnsMatchSequentialDriverAndRestoreRhs) {
  ContactProblem pb;
  const auto p = gpart::rcb_contact_aware(pb.mesh, 4);
  auto systems = gpart::distribute(pb.sys.a, pb.sys.b, p);
  const auto factory = [](const gpart::LocalSystem&, const gsp::BlockCSR& aii, gp::Precision) {
    return std::make_unique<gp::BIC0>(aii);
  };
  gd::DistOptions dopt;
  dopt.cg.tolerance = 1e-8;

  std::vector<std::vector<double>> saved_b;
  for (const auto& s : systems) saved_b.push_back(s.b);
  std::vector<std::vector<std::vector<double>>> rhs(2);
  for (const auto& s : systems) {
    rhs[0].push_back(s.b);
    rhs[1].push_back(s.b);
    for (auto& v : rhs[1].back()) v *= 2.0;
  }
  std::vector<std::vector<double>> xg;
  const auto res = gd::solve_distributed_batched(systems, factory, rhs, dopt, &xg);
  ASSERT_EQ(res.size(), 2u);
  // the systems' own b vectors come back untouched
  for (std::size_t r = 0; r < systems.size(); ++r) EXPECT_EQ(systems[r].b, saved_b[r]);
  // each column equals the single-RHS driver run on that column's b
  for (std::size_t c = 0; c < 2; ++c) {
    for (std::size_t r = 0; r < systems.size(); ++r) systems[r].b = rhs[c][r];
    std::vector<double> x_one;
    const gd::DistResult one = gd::solve_distributed(systems, factory, dopt, &x_one);
    EXPECT_EQ(res[c].status, one.status);
    EXPECT_EQ(res[c].iterations, one.iterations);
    ASSERT_EQ(xg[c].size(), x_one.size());
    for (std::size_t i = 0; i < x_one.size(); ++i) ASSERT_EQ(xg[c][i], x_one[i]);
  }
  for (std::size_t r = 0; r < systems.size(); ++r) systems[r].b = saved_b[r];
}

// ---------------------------------------------------------------------------
// Service-level request coalescing
// ---------------------------------------------------------------------------

TEST(BatchSvc, CoalescingFormsFullBatchDeterministically) {
  const gm::HexMesh mesh = gm::simple_block({3, 3, 2, 3, 3});
  // one worker + a long window: the worker's leader holds the dispatch open
  // until all four same-key requests have been harvested (deterministic)
  gsvc::SolverService svc(batch_service(1, 4, 5.0));
  const gsvc::ModelId model =
      svc.register_model(mesh, {{1.0, 0.3}}, ContactProblem::make_bc(mesh));
  const double scales[] = {1.0, 2.0, 0.5, 1.5};
  std::vector<std::future<gsvc::SolveResponse>> futures;
  for (double s : scales) {
    gsvc::SolveRequest req;
    req.model = model;
    req.priority = gsvc::Priority::kBatch;
    req.lambda = 1e4;
    req.load_scale = s;
    futures.push_back(svc.submit(req));
  }
  std::vector<gsvc::SolveResponse> resp;
  for (auto& f : futures) resp.push_back(f.get());
  for (const auto& r : resp) ASSERT_TRUE(ok(r.status));
  // linear elasticity: each column is its leader's solution scaled (compared
  // against the solution norm — pointwise ratios are meaningless on the
  // near-zero dofs whose values sit at the CG-tolerance noise floor)
  const double norm0 = max_abs(resp[0].report.solution);
  for (std::size_t i = 1; i < resp.size(); ++i) {
    double err = 0.0;
    for (std::size_t d = 0; d < resp[0].report.solution.size(); ++d)
      err = std::max(err, std::abs(resp[i].report.solution[d] -
                                   scales[i] * resp[0].report.solution[d]));
    EXPECT_LT(err, 1e-6 * scales[i] * norm0) << "request " << i;
  }
  const auto snap = svc.registry().snapshot();
  const auto* hit = snap.counter("svc.coalesce.hit");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 3u);  // three followers rode the leader's dispatch
  const geofem::obs::HistogramData* hist = snap.histogram("svc.batch_size");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 1u);
  EXPECT_EQ(hist->max, 4.0);
  const auto* to = snap.counter("svc.coalesce.window_timeout");
  if (to != nullptr) {
    EXPECT_EQ(*to, 0u);
  }
  const gsvc::SolverService::Counts c = svc.counts();
  EXPECT_EQ(c.completed, 4u);
  EXPECT_EQ(c.failed, 0u);
}

TEST(BatchSvc, SoloDispatchBitIdenticalWithCoalescingOn) {
  const gm::HexMesh mesh = gm::simple_block({3, 3, 2, 3, 3});
  gsvc::SolveRequest req;
  req.lambda = 1e4;
  req.priority = gsvc::Priority::kInteractive;

  gsvc::SolverService off(batch_service(1, 1, 0.0));
  req.model = off.register_model(mesh, {{1.0, 0.3}}, ContactProblem::make_bc(mesh));
  const gsvc::SolveResponse a = off.submit(req).get();

  gsvc::SolverService on(batch_service(1, 4, 0.0));
  req.model = on.register_model(mesh, {{1.0, 0.3}}, ContactProblem::make_bc(mesh));
  const gsvc::SolveResponse b = on.submit(req).get();

  ASSERT_TRUE(ok(a.status));
  ASSERT_TRUE(ok(b.status));
  EXPECT_EQ(a.report.cg.iterations, b.report.cg.iterations);
  ASSERT_EQ(a.report.solution.size(), b.report.solution.size());
  for (std::size_t i = 0; i < a.report.solution.size(); ++i)
    ASSERT_EQ(a.report.solution[i], b.report.solution[i]) << "dof " << i;
}

TEST(BatchSvc, WindowTimeoutIsCounted) {
  const gm::HexMesh mesh = gm::simple_block({3, 3, 2, 3, 3});
  gsvc::SolverService svc(batch_service(1, 4, 0.05));
  const gsvc::ModelId model =
      svc.register_model(mesh, {{1.0, 0.3}}, ContactProblem::make_bc(mesh));
  gsvc::SolveRequest req;
  req.model = model;
  req.priority = gsvc::Priority::kBatch;
  req.lambda = 1e4;
  const gsvc::SolveResponse r = svc.submit(req).get();
  ASSERT_TRUE(ok(r.status));
  const auto snap = svc.registry().snapshot();
  const auto* to = snap.counter("svc.coalesce.window_timeout");
  ASSERT_NE(to, nullptr);
  EXPECT_EQ(*to, 1u);  // the lone batch leader waited the window out
  const geofem::obs::HistogramData* hist = snap.histogram("svc.batch_size");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->max, 1.0);
}

TEST(BatchSvc, IneligibleRequestsNeverCoalesce) {
  const gm::HexMesh mesh = gm::simple_block({3, 3, 2, 3, 3});
  gsvc::SolverService svc(batch_service(1, 4, 0.5));
  const gsvc::ModelId model =
      svc.register_model(mesh, {{1.0, 0.3}}, ContactProblem::make_bc(mesh));
  std::vector<std::future<gsvc::SolveResponse>> futures;
  for (int i = 0; i < 3; ++i) {
    gsvc::SolveRequest req;
    req.model = model;
    req.priority = gsvc::Priority::kBatch;
    req.lambda = 1e4;
    req.variant = gso::CGVariant::kGropp;  // non-classic: never batch-eligible
    futures.push_back(svc.submit(req));
  }
  for (auto& f : futures) ASSERT_TRUE(ok(f.get().status));
  const auto snap = svc.registry().snapshot();
  const auto* hit = snap.counter("svc.coalesce.hit");
  if (hit != nullptr) {
    EXPECT_EQ(*hit, 0u);
  }
  const geofem::obs::HistogramData* hist = snap.histogram("svc.batch_size");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 3u);  // three solo dispatches
  EXPECT_EQ(hist->max, 1.0);
}

TEST(BatchSvc, PerRequestToleranceHonoredWithinBatch) {
  const gm::HexMesh mesh = gm::simple_block({3, 3, 2, 3, 3});
  gsvc::SolverService svc(batch_service(1, 3, 5.0));
  const gsvc::ModelId model =
      svc.register_model(mesh, {{1.0, 0.3}}, ContactProblem::make_bc(mesh));
  std::vector<std::future<gsvc::SolveResponse>> futures;
  const double tols[] = {0.0, 1e-2, 0.0};  // 0 = service default (1e-8)
  for (double t : tols) {
    gsvc::SolveRequest req;
    req.model = model;
    req.priority = gsvc::Priority::kBatch;
    req.lambda = 1e4;
    req.tolerance = t;
    futures.push_back(svc.submit(req));
  }
  std::vector<gsvc::SolveResponse> resp;
  for (auto& f : futures) resp.push_back(f.get());
  for (const auto& r : resp) ASSERT_TRUE(ok(r.status));
  const auto snap = svc.registry().snapshot();
  const auto* hit = snap.counter("svc.coalesce.hit");
  ASSERT_NE(hit, nullptr);
  ASSERT_EQ(*hit, 2u);  // all three rode one dispatch
  // the loose column froze earlier than the tight ones
  EXPECT_LT(resp[1].report.cg.iterations, resp[0].report.cg.iterations);
  EXPECT_LE(resp[1].report.cg.relative_residual, 1e-2);
  EXPECT_LE(resp[0].report.cg.relative_residual, 1e-8);
  EXPECT_LE(resp[2].report.cg.relative_residual, 1e-8);
}
