#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "contact/penalty.hpp"
#include "fem/assembly.hpp"
#include "mesh/simple_block.hpp"
#include "mesh/southwest_japan.hpp"
#include "reorder/coloring.hpp"
#include "reorder/djds.hpp"
#include "util/rng.hpp"

namespace gc = geofem::contact;
namespace gf = geofem::fem;
namespace gm = geofem::mesh;
namespace gr = geofem::reorder;
namespace gs = geofem::sparse;

namespace {

gs::BlockCSR contact_matrix(gm::HexMesh& mesh, double lambda,
                            gm::SimpleBlockParams p = {3, 3, 2, 3, 3}) {
  mesh = gm::simple_block(p);
  auto sys = gf::assemble_elasticity(mesh, {{1.0, 0.3}});
  gc::add_penalty(sys.a, mesh.contact_groups, lambda);
  return std::move(sys.a);
}

}  // namespace

TEST(Coloring, RCMIsPermutation) {
  gm::HexMesh mesh;
  auto a = contact_matrix(mesh, 1e2);
  const auto g = gs::graph_of(a);
  auto perm = gr::rcm_permutation(g);
  std::vector<int> seen(perm.size(), 0);
  for (int p : perm) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, static_cast<int>(perm.size()));
    seen[static_cast<std::size_t>(p)]++;
  }
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(Coloring, CuthillMckeeLevelsCoverGraph) {
  gm::HexMesh mesh;
  auto a = contact_matrix(mesh, 1e2);
  const auto g = gs::graph_of(a);
  const auto lo = gr::cuthill_mckee(g);
  EXPECT_EQ(static_cast<int>(lo.order.size()), g.n);
  EXPECT_EQ(lo.levels.front(), 0);
  EXPECT_EQ(lo.levels.back(), g.n);
  for (std::size_t l = 1; l < lo.levels.size(); ++l)
    EXPECT_GT(lo.levels[l], lo.levels[l - 1]);
}

TEST(Coloring, MulticolorIsValidIndependentSets) {
  gm::HexMesh mesh;
  auto a = contact_matrix(mesh, 1e2);
  const auto g = gs::graph_of(a);
  for (int target : {2, 10, 40}) {
    auto col = gr::multicolor(g, target);
    EXPECT_TRUE(col.valid_for(g)) << target << " colors";
    EXPECT_GE(col.num_colors, std::min(target, 2));
  }
}

TEST(Coloring, MulticolorBalancesColorSizes) {
  gm::HexMesh mesh;
  auto a = contact_matrix(mesh, 1e2, {6, 6, 4, 6, 6});
  const auto g = gs::graph_of(a);
  const int target = 40;  // 27-pt stencil needs >= ~27 colors for balance
  auto col = gr::multicolor(g, target);
  auto mem = col.members();
  std::size_t mn = mem[0].size(), mx = mem[0].size();
  for (const auto& m : mem) {
    mn = std::min(mn, m.size());
    mx = std::max(mx, m.size());
  }
  EXPECT_LT(static_cast<double>(mx), 3.0 * static_cast<double>(std::max<std::size_t>(mn, 1)));
}

TEST(Coloring, CMRCMValidOnDistortedMesh) {
  auto mesh = gm::southwest_japan_like({});
  auto sys = gf::assemble_elasticity(mesh, {{1.0, 0.3}});
  gc::add_penalty(sys.a, mesh.contact_groups, 1e4);
  const auto g = gs::graph_of(sys.a);
  auto col = gr::cm_rcm(g, 20);
  EXPECT_TRUE(col.valid_for(g));
}

TEST(Coloring, QuotientGraphAndLift) {
  gm::HexMesh mesh;
  auto a = contact_matrix(mesh, 1e2);
  const auto g = gs::graph_of(a);
  auto sn = gc::build_supernodes(a.n, mesh.contact_groups);
  auto q = gr::quotient_graph(g, sn.node_to_super, sn.count());
  EXPECT_EQ(q.n, sn.count());
  auto scol = gr::multicolor(q, 20);
  EXPECT_TRUE(scol.valid_for(q));
  auto col = gr::lift_coloring(scol, sn.node_to_super, a.n);
  // members of a supernode share a color
  for (const auto& grp : mesh.contact_groups) {
    for (int v : grp)
      EXPECT_EQ(col.color_of[static_cast<std::size_t>(v)],
                col.color_of[static_cast<std::size_t>(grp[0])]);
  }
}

// ---------------------------------------------------------------------------
// DJDS
// ---------------------------------------------------------------------------

namespace {

struct DJDSFixture {
  gm::HexMesh mesh;
  gs::BlockCSR a;
  gc::Supernodes sn;
  gr::Coloring coloring;

  explicit DJDSFixture(double lambda = 1e4, int colors = 10) {
    a = contact_matrix(mesh, lambda);
    sn = gc::build_supernodes(a.n, mesh.contact_groups);
    const auto g = gs::graph_of(a);
    auto q = gr::quotient_graph(g, sn.node_to_super, sn.count());
    coloring = gr::lift_coloring(gr::multicolor(q, colors), sn.node_to_super, a.n);
  }
};

}  // namespace

TEST(DJDS, PermutationIsBijective) {
  DJDSFixture f;
  gr::DJDSMatrix dj(f.a, f.coloring, &f.sn, {});
  const auto& perm = dj.perm();
  const auto& iperm = dj.iperm();
  for (int i = 0; i < dj.n(); ++i) {
    EXPECT_EQ(iperm[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])], i);
  }
}

TEST(DJDS, SpmvMatchesCSR) {
  DJDSFixture f;
  gr::DJDSMatrix dj(f.a, f.coloring, &f.sn, {});
  geofem::util::Rng rng(99);
  std::vector<double> x(f.a.ndof()), y_ref(f.a.ndof());
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  f.a.spmv(x, y_ref);

  // permuted input/output
  std::vector<double> px(x.size()), py(x.size());
  for (int i = 0; i < f.a.n; ++i)
    for (int c = 0; c < 3; ++c)
      px[static_cast<std::size_t>(dj.perm()[static_cast<std::size_t>(i)]) * 3 +
         static_cast<std::size_t>(c)] = x[static_cast<std::size_t>(i) * 3 + static_cast<std::size_t>(c)];
  dj.spmv(px, py);
  for (int i = 0; i < f.a.n; ++i)
    for (int c = 0; c < 3; ++c)
      EXPECT_NEAR(py[static_cast<std::size_t>(dj.perm()[static_cast<std::size_t>(i)]) * 3 +
                     static_cast<std::size_t>(c)],
                  y_ref[static_cast<std::size_t>(i) * 3 + static_cast<std::size_t>(c)], 1e-9);
}

TEST(DJDS, SupernodesAreContiguousAndSorted) {
  DJDSFixture f;
  gr::DJDSMatrix dj(f.a, f.coloring, &f.sn, {});
  // ranges present for every multi-node supernode
  std::size_t multi = 0;
  for (const auto& m : f.sn.members)
    if (m.size() > 1) ++multi;
  EXPECT_EQ(dj.super_ranges().size(), multi);
  // members mapped to consecutive new ids
  for (int s = 0; s < f.sn.count(); ++s) {
    const auto& mem = f.sn.members[static_cast<std::size_t>(s)];
    if (mem.size() < 2) continue;
    std::vector<int> pos;
    for (int v : mem) pos.push_back(dj.perm()[static_cast<std::size_t>(v)]);
    std::sort(pos.begin(), pos.end());
    for (std::size_t t = 1; t < pos.size(); ++t) EXPECT_EQ(pos[t], pos[t - 1] + 1);
  }
}

TEST(DJDS, LongerLoopsWithFewerColors) {
  DJDSFixture few(1e4, 5), many(1e4, 50);
  gr::DJDSMatrix dj_few(few.a, few.coloring, &few.sn, {});
  gr::DJDSMatrix dj_many(many.a, many.coloring, &many.sn, {});
  EXPECT_GT(dj_few.average_vector_length(), dj_many.average_vector_length());
}

TEST(DJDS, SizeSortGroupsSupernodesBySize) {
  // Fig 22: with size sorting, supernode sizes are non-increasing within each
  // (color, PE) chunk, so the dense-LU substitution runs branch-free batches.
  DJDSFixture f;
  gr::DJDSOptions opt;
  opt.sort_supernodes_by_size = true;
  gr::DJDSMatrix dj(f.a, f.coloring, &f.sn, opt);
  const auto& cb = dj.chunk_begin();
  for (std::size_t ch = 0; ch + 1 < cb.size(); ++ch) {
    int prev_size = std::numeric_limits<int>::max();
    for (const auto& sr : dj.super_ranges()) {
      if (sr.start < cb[ch] || sr.start >= cb[ch + 1]) continue;
      EXPECT_LE(sr.size, prev_size);
      prev_size = sr.size;
    }
  }
}

TEST(DJDS, StatsAreFinite) {
  DJDSFixture f;
  gr::DJDSMatrix dj(f.a, f.coloring, &f.sn, {});
  EXPECT_GT(dj.average_vector_length(), 0.0);
  EXPECT_GE(dj.load_imbalance_percent(), 0.0);
  EXPECT_GE(dj.dummy_percent(), 0.0);
  EXPECT_LT(dj.dummy_percent(), 50.0);
  EXPECT_GT(dj.memory_bytes(), 0u);
}

TEST(DJDS, WorksWithoutSupernodes) {
  DJDSFixture f;
  const auto g = gs::graph_of(f.a);
  auto col = gr::multicolor(g, 10);
  gr::DJDSMatrix dj(f.a, col, nullptr, {});
  EXPECT_TRUE(dj.super_ranges().empty());
  // Rows sort by total length, so the separate L/U jagged sets still need a
  // little padding; it must stay small.
  EXPECT_LT(dj.dummy_percent(), 15.0);
  geofem::util::Rng rng(5);
  std::vector<double> x(f.a.ndof()), y_ref(f.a.ndof()), px(f.a.ndof()), py(f.a.ndof());
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  f.a.spmv(x, y_ref);
  for (int i = 0; i < f.a.n; ++i)
    for (int c = 0; c < 3; ++c)
      px[static_cast<std::size_t>(dj.perm()[static_cast<std::size_t>(i)]) * 3 +
         static_cast<std::size_t>(c)] = x[static_cast<std::size_t>(i) * 3 + static_cast<std::size_t>(c)];
  dj.spmv(px, py);
  for (std::size_t i = 0; i < py.size(); ++i) {
    const std::size_t bi = i / 3, c = i % 3;
    EXPECT_NEAR(py[static_cast<std::size_t>(dj.perm()[bi]) * 3 + c], y_ref[i], 1e-9);
  }
}

TEST(DJDS, ChunksPartitionRows) {
  DJDSFixture f;
  gr::DJDSOptions opt;
  opt.npe = 4;
  gr::DJDSMatrix dj(f.a, f.coloring, &f.sn, opt);
  const auto& cb = dj.chunk_begin();
  ASSERT_EQ(cb.size(), static_cast<std::size_t>(dj.num_colors() * 4 + 1));
  EXPECT_EQ(cb.front(), 0);
  EXPECT_EQ(cb.back(), dj.n());
  for (std::size_t i = 1; i < cb.size(); ++i) EXPECT_GE(cb[i], cb[i - 1]);
}
